//! Attribute values stored in working-memory elements.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::Atom;

/// A typed attribute value.
///
/// The value domain follows OPS5 (numbers and symbols) extended with the
/// types a database working memory needs: strings, booleans and a `Nil`
/// marker for absent attributes. `Value` implements total ordering and
/// hashing (floats are ordered by their IEEE-754 total order and hashed by
/// bit pattern) so values can serve as index keys.
///
/// Cross-type comparison is defined but type-segregated: all integers sort
/// before all floats, etc. Numeric *tests* in rules (`<`, `>`, …) instead
/// use [`Value::num_cmp`], which compares integers and floats numerically,
/// matching what a user expects of `(cost < 3.5)`.
#[derive(Clone, Debug)]
pub enum Value {
    /// Absent / null.
    Nil,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Symbolic constant (OPS5 symbol), e.g. `pending`.
    Sym(Atom),
    /// Free-form string (distinct from symbols, as in a real database).
    Str(Atom),
}

impl Value {
    /// A discriminant rank used to segregate types in the total order.
    fn rank(&self) -> u8 {
        match self {
            Value::Nil => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Sym(_) => 4,
            Value::Str(_) => 5,
        }
    }

    /// Returns `true` if the value is numeric (integer or float).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// Returns the value as an `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Returns the value as an `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Returns the symbol or string content if the value is textual.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Sym(a) | Value::Str(a) => Some(a.as_str()),
            _ => None,
        }
    }

    /// Numeric comparison across `Int` and `Float`; `None` when either side
    /// is non-numeric or the comparison is with a NaN.
    ///
    /// ```
    /// use dps_wm::Value;
    /// use std::cmp::Ordering;
    /// assert_eq!(Value::Int(2).num_cmp(&Value::Float(2.5)), Some(Ordering::Less));
    /// assert_eq!(Value::from("x").num_cmp(&Value::Int(1)), None);
    /// ```
    pub fn num_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// Equality with numeric coercion: `Int(2)` equals `Float(2.0)`.
    ///
    /// This is the equality used by rule condition tests; the `Eq`
    /// implementation (used for index keys) is strict.
    pub fn loose_eq(&self, other: &Value) -> bool {
        if self.is_numeric() && other.is_numeric() {
            self.num_cmp(other) == Some(Ordering::Equal)
        } else {
            self == other
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Nil, Value::Nil) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Sym(a), Value::Sym(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Nil => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Sym(a) | Value::Str(a) => a.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Sym(a), Value::Sym(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "nil"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Sym(a) => write!(f, "{a}"),
            Value::Str(a) => write!(f, "{a:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

/// `&str` converts to a *symbol*, the common case in rule code.
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Sym(Atom::from(s))
    }
}

impl From<Atom> for Value {
    fn from(a: Atom) -> Self {
        Value::Sym(a)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Atom::from(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn strict_eq_separates_types() {
        assert_ne!(Value::Int(2), Value::Float(2.0));
        assert_ne!(Value::Sym(Atom::from("a")), Value::Str(Atom::from("a")));
        assert_eq!(Value::Int(2), Value::Int(2));
    }

    #[test]
    fn loose_eq_coerces_numbers() {
        assert!(Value::Int(2).loose_eq(&Value::Float(2.0)));
        assert!(!Value::Int(2).loose_eq(&Value::Float(2.5)));
        assert!(!Value::Int(2).loose_eq(&Value::from("2")));
    }

    #[test]
    fn num_cmp_mixed() {
        use Ordering::*;
        assert_eq!(Value::Int(3).num_cmp(&Value::Int(5)), Some(Less));
        assert_eq!(Value::Float(3.5).num_cmp(&Value::Int(3)), Some(Greater));
        assert_eq!(Value::Float(2.0).num_cmp(&Value::Int(2)), Some(Equal));
        assert_eq!(Value::Bool(true).num_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Float(f64::NAN).num_cmp(&Value::Float(1.0)), None);
    }

    #[test]
    fn hash_consistent_with_eq_for_floats() {
        let mut s = HashSet::new();
        s.insert(Value::Float(1.5));
        assert!(s.contains(&Value::Float(1.5)));
        assert!(!s.contains(&Value::Float(-1.5)));
        // NaN is hashable and equal to the same-bit NaN.
        s.insert(Value::Float(f64::NAN));
        assert!(s.contains(&Value::Float(f64::NAN)));
    }

    #[test]
    fn total_order_is_transitive_across_types() {
        let mut v = [
            Value::from("sym"),
            Value::Int(1),
            Value::Nil,
            Value::Float(0.5),
            Value::Bool(true),
            Value::from(String::from("str")),
        ];
        v.sort();
        let ranks: Vec<u8> = v.iter().map(|x| x.rank()).collect();
        assert_eq!(ranks, [0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn negative_zero_and_positive_zero_are_distinct_keys() {
        // Strict equality is by bit pattern: -0.0 and 0.0 differ as index
        // keys, while loose (numeric) equality treats them as equal.
        assert_ne!(Value::Float(-0.0), Value::Float(0.0));
        assert!(Value::Float(-0.0).loose_eq(&Value::Float(0.0)));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::Float(4.5).as_f64(), Some(4.5));
        assert_eq!(Value::from("a").as_f64(), None);
        assert_eq!(Value::Int(4).as_i64(), Some(4));
        assert_eq!(Value::Float(4.0).as_i64(), None);
        assert_eq!(Value::from("a").as_text(), Some("a"));
        assert_eq!(Value::from(String::from("b")).as_text(), Some("b"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Nil.to_string(), "nil");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::from("go").to_string(), "go");
        assert_eq!(Value::from(String::from("s")).to_string(), "\"s\"");
    }
}
