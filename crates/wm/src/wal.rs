//! File-backed write-ahead logging and crash recovery.
//!
//! The paper's opening motivation — "knowledge sharing and knowledge
//! persistence, features found currently in databases" — needs more
//! than the in-memory snapshot/redo codec of [`crate::persist`]: it
//! needs the state to survive the process. This module provides the
//! storage-engine pieces:
//!
//! * **WAL segments** — append-only files of CRC-framed records, one
//!   record per sequence-numbered [`Change`] batch (the §4.2 atomic
//!   commit unit the match pipeline publishes). Record framing:
//!   `[len: u32][crc32: u32][payload]` with
//!   `payload = [seq: u64][count: u32][(tag, wme)*]` and the CRC taken
//!   over the payload.
//! * **Group commit** — [`WalWriter::append`] is a memcpy into a
//!   pending buffer (called under the engine's base mutex, so records
//!   are sequence-ordered by construction); [`WalWriter::sync_to`]
//!   makes a batch durable. Concurrent committers piggyback: one
//!   thread becomes the flusher, writes + fsyncs everything pending,
//!   and publishes the new durable horizon; the rest just wait on it.
//! * **Checkpoints** — periodic full snapshots (reusing
//!   [`WorkingMemory::encode_snapshot`]) written atomically
//!   (tmp + fsync + rename), each paired with a fresh log segment so
//!   old segments can be dropped.
//! * **ARIES-lite recovery** — [`recover`] loads the newest valid
//!   checkpoint and redoes the log suffix. Redo is idempotent at the
//!   batch level (each batch applies all-or-nothing via
//!   [`crate::persist::apply_changes_atomic`]) and the **torn-tail
//!   rule** applies: an incomplete or CRC-failing record *at the very
//!   end of the last segment* is a torn write — truncate there and
//!   recover the prefix. A CRC failure with valid data after it is
//!   genuine corruption and recovery refuses
//!   ([`CodecError::Corrupt`]) — that distinction is what the
//!   falsifiability probe in the recovery gate exercises.
//!
//! Kill-point fault injection (`kill_clean` / `kill_torn`) simulates
//! process death at the seams the chaos harness cares about: after a
//! commit publishes but before its fsync, and mid-write on the tail
//! record.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::persist::{
    apply_changes_atomic, decode_batch_body, encode_batch_body, put_u32, put_u64, Reader,
};
use crate::{Change, CodecError, WorkingMemory};

/// Magic bytes opening every WAL segment file.
const SEGMENT_MAGIC: &[u8; 4] = b"DPWL";
/// Magic bytes opening every checkpoint file.
const CHECKPOINT_MAGIC: &[u8; 4] = b"DPCK";
/// Current on-disk format version.
const VERSION: u8 = 1;
/// Segment header: magic + version + base_seq.
const SEGMENT_HEADER_LEN: usize = 4 + 1 + 8;

/// Errors from the durability layer: either the codec rejected the
/// bytes or the filesystem did.
#[derive(Debug)]
pub enum WalError {
    /// Encoding/decoding failure (including [`CodecError::Corrupt`]
    /// for a mid-log CRC failure).
    Codec(CodecError),
    /// Filesystem failure.
    Io(io::Error),
    /// Recovery found no usable checkpoint in the directory.
    NoCheckpoint,
    /// The writer was killed by fault injection; further appends and
    /// syncs are refused (the "process" is dead).
    Dead,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Codec(e) => write!(f, "wal codec error: {e}"),
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::NoCheckpoint => write!(f, "no usable checkpoint found"),
            WalError::Dead => write!(f, "wal writer is dead (kill point fired)"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<CodecError> for WalError {
    fn from(e: CodecError) -> Self {
        WalError::Codec(e)
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, table-driven — the workspace is dependency-free)
// ---------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (IEEE) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------

/// Encodes one record frame `[len][crc][payload]` into `out`, in
/// place: the payload is written straight after an 8-byte hole and the
/// `len`/`crc` fields are patched afterwards. No scratch allocation —
/// this runs inside the engine's commit critical section, where every
/// copy lengthens the serial fraction. On error `out` is restored.
fn encode_record(out: &mut Vec<u8>, seq: u64, changes: &[Change]) -> Result<(), CodecError> {
    let start = out.len();
    out.extend_from_slice(&[0u8; 8]);
    put_u64(out, seq);
    if let Err(e) = encode_batch_body(out, changes) {
        out.truncate(start);
        return Err(e);
    }
    let payload_len = out.len() - start - 8;
    let Ok(len) = u32::try_from(payload_len) else {
        out.truncate(start);
        return Err(CodecError::TooLarge);
    };
    let crc = crc32(&out[start + 8..]);
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    Ok(())
}

/// One decoded WAL record.
#[derive(Clone, Debug)]
pub struct WalRecord {
    /// Commit sequence number of the batch.
    pub seq: u64,
    /// The committed change batch.
    pub changes: Vec<Change>,
}

/// Result of scanning one segment's record stream.
#[derive(Debug)]
struct SegmentScan {
    records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header + whole records).
    valid_len: usize,
    /// `true` if bytes after `valid_len` were discarded as a torn tail.
    torn: bool,
}

/// Scans the record stream of a segment body (after the header),
/// applying the torn-tail rule: an incomplete frame or a CRC failure
/// *touching end-of-buffer* is torn (prefix survives); a bad frame
/// with further data after it is [`CodecError::Corrupt`].
fn scan_records(buf: &[u8], header_len: usize) -> Result<SegmentScan, CodecError> {
    let mut records = Vec::new();
    let mut pos = header_len;
    loop {
        if pos == buf.len() {
            return Ok(SegmentScan { records, valid_len: pos, torn: false });
        }
        // Frame header.
        if buf.len() - pos < 8 {
            // Torn frame header at EOF.
            return Ok(SegmentScan { records, valid_len: pos, torn: true });
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let body_start = pos + 8;
        let body_end = match body_start.checked_add(len) {
            Some(e) => e,
            // Length overflows usize: cannot be a valid frame. Nothing
            // can follow it either, so treat as torn tail.
            None => return Ok(SegmentScan { records, valid_len: pos, torn: true }),
        };
        if body_end > buf.len() {
            // Payload runs past EOF: torn write.
            return Ok(SegmentScan { records, valid_len: pos, torn: true });
        }
        let payload = &buf[body_start..body_end];
        if crc32(payload) != crc {
            if body_end == buf.len() {
                // The final frame is damaged — torn write on the tail.
                return Ok(SegmentScan { records, valid_len: pos, torn: true });
            }
            // Damage with valid data after it: genuine corruption.
            return Err(CodecError::Corrupt { at: pos });
        }
        let mut r = Reader::new(payload);
        let seq = r.u64()?;
        let changes = decode_batch_body(&mut r)?;
        if !r.at_end() {
            return Err(CodecError::TrailingBytes { at: pos + 8 + r.pos() });
        }
        records.push(WalRecord { seq, changes });
        pos = body_end;
    }
}

// ---------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------

/// Lifetime counters for one [`WalWriter`]. All monotone; read with
/// [`WalWriter::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (one per committed batch).
    pub appends: u64,
    /// Physical `fsync` calls issued.
    pub fsyncs: u64,
    /// Records made durable across all fsyncs.
    pub synced_records: u64,
    /// `sync_to` calls that found their seq already durable or
    /// piggybacked on another thread's fsync.
    pub piggybacked: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Bytes written to segment files.
    pub bytes_written: u64,
}

#[derive(Default)]
struct StatCells {
    appends: AtomicU64,
    fsyncs: AtomicU64,
    synced_records: AtomicU64,
    piggybacked: AtomicU64,
    checkpoints: AtomicU64,
    bytes_written: AtomicU64,
    /// Gauge mirror of the pending (staged-but-unsynced) buffer length,
    /// maintained at every site that mutates it so telemetry probes can
    /// read the backlog without touching the file lock.
    pending_bytes: AtomicU64,
    /// Cumulative nanoseconds spent inside `write_all` + `sync_all` —
    /// per-tick first differences give the live fsync latency series.
    fsync_nanos: AtomicU64,
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// How a kill point should mangle the tail when the "process dies".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillMode {
    /// Die between publish and fsync: pending records are lost whole.
    Clean,
    /// Die mid-write: the tail record reaches disk torn (a prefix of
    /// its frame), exercising the torn-tail truncation rule.
    Torn,
}

struct WalFile {
    file: Arc<File>,
    /// Encoded-but-unsynced record bytes, in seq order.
    pending: Vec<u8>,
    /// Highest seq appended (durable or pending). 0 = none.
    appended_seq: u64,
    /// Seq of the first pending record (for durable accounting).
    pending_records: u64,
    dead: bool,
}

struct SyncState {
    /// Highest seq known durable on disk.
    durable_seq: u64,
    /// A flusher is currently writing+fsyncing.
    syncing: bool,
    /// Highest seq any committer has asked to be made durable. The
    /// baton flusher drains until `durable_seq` catches this, so a
    /// request made while an fsync is in flight is never stranded.
    requested: u64,
}

/// Group-committing segment writer. `append` stages bytes (call under
/// the engine's base mutex — that is what makes records seq-ordered);
/// `sync_to` makes them durable, sharing one fsync among concurrent
/// committers.
pub struct WalWriter {
    file: Mutex<WalFile>,
    /// Ordering lock for file I/O, held across write+fsync. Every path
    /// that writes segment bytes (flush, rotation, torn-tail kill)
    /// takes `io` before `file`, so bytes reach the segment in capture
    /// order — while `append` needs only the briefly-held `file` lock
    /// and never stalls behind an in-flight fsync.
    io: Mutex<()>,
    sync: Mutex<SyncState>,
    cond: Condvar,
    stats: StatCells,
}

impl WalWriter {
    fn open_segment(dir: &Path, base_seq: u64) -> Result<File, WalError> {
        let path = segment_path(dir, base_seq);
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path)?;
        let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN);
        header.extend_from_slice(SEGMENT_MAGIC);
        header.push(VERSION);
        put_u64(&mut header, base_seq);
        file.write_all(&header)?;
        file.sync_all()?;
        Ok(file)
    }

    /// Appends the batch committed at `seq` to the pending buffer.
    /// Call strictly in commit order (the engine holds its base mutex
    /// across the commit, which guarantees this). Cheap: one encode +
    /// memcpy, no syscall.
    pub fn append(&self, seq: u64, changes: &[Change]) -> Result<(), WalError> {
        let mut f = self.file.lock().expect("wal file lock");
        if f.dead {
            return Err(WalError::Dead);
        }
        debug_assert!(seq > f.appended_seq, "records must be appended in seq order");
        let f = &mut *f;
        encode_record(&mut f.pending, seq, changes)?;
        f.appended_seq = seq;
        f.pending_records += 1;
        self.stats.appends.fetch_add(1, Ordering::Relaxed);
        self.stats
            .pending_bytes
            .store(f.pending.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Blocks until every record with sequence number ≤ `seq` is
    /// durable. Group commit: whoever arrives while nobody is syncing
    /// becomes the flusher and drains (covering later committers'
    /// records too); everyone else waits for the durable horizon to
    /// pass their seq.
    pub fn sync_to(&self, seq: u64) -> Result<(), WalError> {
        let mut s = self.sync.lock().expect("wal sync lock");
        loop {
            if s.durable_seq >= seq {
                self.stats.piggybacked.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            if !s.syncing {
                break;
            }
            s = self.cond.wait(s).expect("wal sync wait");
        }
        s.syncing = true;
        s.requested = s.requested.max(seq);
        drop(s);
        match self.drain() {
            Ok(horizon) if horizon >= seq => Ok(()),
            // Dead writer dropped our record; surface it.
            Ok(_) => Err(WalError::Dead),
            Err(e) => Err(e),
        }
    }

    /// Non-blocking group commit: guarantees some flusher will make
    /// `seq` durable (while the writer lives) and returns immediately
    /// when that flusher is someone else. Whoever arrives while nobody
    /// is flushing takes the baton and drains; everyone else just
    /// registers their seq and keeps committing — the durable horizon
    /// trails the published one by at most the in-flight fsync batch,
    /// which is exactly the prefix-loss the recovery gate sweeps.
    /// Returns `Ok(Some(horizon))` when this call did the fsync(s),
    /// `Ok(None)` when it piggybacked.
    pub fn request_sync(&self, seq: u64) -> Result<Option<u64>, WalError> {
        {
            let mut s = self.sync.lock().expect("wal sync lock");
            if s.durable_seq >= seq {
                self.stats.piggybacked.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            }
            s.requested = s.requested.max(seq);
            if s.syncing {
                // The in-flight flusher's drain loop covers us.
                self.stats.piggybacked.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            }
            s.syncing = true;
        }
        self.drain().map(Some)
    }

    /// The baton flusher's loop (caller must have won `syncing`):
    /// write + fsync everything pending, repeating while commits were
    /// requested behind the in-flight fsync. Clears `syncing` and
    /// wakes waiters on the way out; returns the final horizon.
    fn drain(&self) -> Result<u64, WalError> {
        loop {
            let flushed = self.flush_pending();
            let mut s = self.sync.lock().expect("wal sync lock");
            match flushed {
                Ok(horizon) => {
                    if horizon > s.durable_seq {
                        s.durable_seq = horizon;
                    }
                    if s.requested > s.durable_seq {
                        drop(s);
                        continue;
                    }
                    s.syncing = false;
                    let horizon = s.durable_seq;
                    drop(s);
                    self.cond.notify_all();
                    return Ok(horizon);
                }
                Err(e) => {
                    s.syncing = false;
                    drop(s);
                    self.cond.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Writes + fsyncs everything pending; returns the new durable
    /// horizon (highest appended seq covered by this flush). The
    /// syscalls run under the `io` lock only — capturing the pending
    /// bytes is the sole moment the `file` lock is held, so appenders
    /// are never serialized behind the fsync. Seeing an empty pending
    /// buffer here means every earlier capture already hit the disk:
    /// its flusher held `io` until its fsync returned.
    fn flush_pending(&self) -> Result<u64, WalError> {
        let _io = self.io.lock().expect("wal io lock");
        let (file, pending, records, horizon) = {
            let mut f = self.file.lock().expect("wal file lock");
            if f.dead {
                return Err(WalError::Dead);
            }
            let horizon = f.appended_seq;
            if f.pending.is_empty() {
                return Ok(horizon);
            }
            let captured = (
                Arc::clone(&f.file),
                std::mem::take(&mut f.pending),
                std::mem::take(&mut f.pending_records),
                horizon,
            );
            self.stats.pending_bytes.store(0, Ordering::Relaxed);
            captured
        };
        let t0 = std::time::Instant::now();
        (&*file).write_all(&pending)?;
        file.sync_all()?;
        self.stats
            .fsync_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.stats
            .synced_records
            .fetch_add(records, Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(pending.len() as u64, Ordering::Relaxed);
        Ok(horizon)
    }

    /// Flushes and fsyncs everything pending right now (no grouping).
    /// Used at rotation and clean shutdown.
    pub fn flush(&self) -> Result<u64, WalError> {
        let horizon = self.flush_pending()?;
        let mut s = self.sync.lock().expect("wal sync lock");
        if horizon > s.durable_seq {
            s.durable_seq = horizon;
        }
        self.cond.notify_all();
        Ok(horizon)
    }

    /// Bytes staged but not yet fsynced (live telemetry gauge; a
    /// lock-free mirror of the pending buffer length).
    pub fn pending_bytes(&self) -> u64 {
        self.stats.pending_bytes.load(Ordering::Relaxed)
    }

    /// Cumulative nanoseconds spent in fsync (live telemetry counter;
    /// per-tick first differences are the fsync latency series).
    pub fn fsync_nanos(&self) -> u64 {
        self.stats.fsync_nanos.load(Ordering::Relaxed)
    }

    /// Highest sequence number known durable.
    pub fn durable_seq(&self) -> u64 {
        self.sync.lock().expect("wal sync lock").durable_seq
    }

    /// Snapshot of lifetime counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            appends: self.stats.appends.load(Ordering::Relaxed),
            fsyncs: self.stats.fsyncs.load(Ordering::Relaxed),
            synced_records: self.stats.synced_records.load(Ordering::Relaxed),
            piggybacked: self.stats.piggybacked.load(Ordering::Relaxed),
            checkpoints: self.stats.checkpoints.load(Ordering::Relaxed),
            bytes_written: self.stats.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Simulates process death at a kill point. [`KillMode::Clean`]
    /// drops all pending (published-but-unsynced) records on the
    /// floor; [`KillMode::Torn`] writes the pending bytes but chops
    /// the final record's frame to a prefix — the torn tail recovery
    /// must truncate. Either way the writer is dead afterwards: all
    /// further appends/syncs return [`WalError::Dead`].
    pub fn kill(&self, mode: KillMode) -> Result<(), WalError> {
        let _io = self.io.lock().expect("wal io lock");
        let mut f = self.file.lock().expect("wal file lock");
        if f.dead {
            return Err(WalError::Dead);
        }
        self.kill_locked(&mut f, mode)?;
        drop(f);
        // Wake any piggybacking waiters so they observe Dead.
        self.cond.notify_all();
        Ok(())
    }

    /// Appends the batch committed at `seq` and immediately dies at
    /// the kill point, all under one file-lock acquisition. The fused
    /// form exists for the chaos seam: with the non-blocking group
    /// commit a concurrent baton flusher could otherwise slip between
    /// a separate `append` and `kill` and make the doomed record
    /// durable, turning the kill site's horizon nondeterministic.
    pub fn append_then_kill(
        &self,
        seq: u64,
        changes: &[Change],
        mode: KillMode,
    ) -> Result<(), WalError> {
        // io before file (the lock order): no flusher can be mid-write,
        // and none can capture the doomed record before the kill below.
        let _io = self.io.lock().expect("wal io lock");
        let mut f = self.file.lock().expect("wal file lock");
        if f.dead {
            return Err(WalError::Dead);
        }
        debug_assert!(seq > f.appended_seq, "records must be appended in seq order");
        {
            let f = &mut *f;
            encode_record(&mut f.pending, seq, changes)?;
            f.appended_seq = seq;
            f.pending_records += 1;
        }
        self.stats.appends.fetch_add(1, Ordering::Relaxed);
        self.kill_locked(&mut f, mode)?;
        drop(f);
        self.cond.notify_all();
        Ok(())
    }

    fn kill_locked(&self, f: &mut WalFile, mode: KillMode) -> Result<(), WalError> {
        f.dead = true;
        let pending = std::mem::take(&mut f.pending);
        f.pending_records = 0;
        self.stats.pending_bytes.store(0, Ordering::Relaxed);
        match mode {
            KillMode::Clean => {}
            KillMode::Torn => {
                if !pending.is_empty() {
                    // Find the final frame boundary so exactly the last
                    // record is torn (earlier pending records land whole).
                    let mut pos = 0usize;
                    let mut last_start = 0usize;
                    while pos + 8 <= pending.len() {
                        let len = u32::from_le_bytes(
                            pending[pos..pos + 4].try_into().expect("4 bytes"),
                        ) as usize;
                        last_start = pos;
                        pos += 8 + len;
                    }
                    // Keep everything before the last frame, plus a strict
                    // prefix of the last frame (at least the len field, so
                    // the tear is visible, never the whole frame).
                    let frame_len = pending.len() - last_start;
                    let keep = last_start + (frame_len / 2).clamp(1, frame_len - 1);
                    (&*f.file).write_all(&pending[..keep])?;
                    f.file.sync_all()?;
                    self.stats
                        .bytes_written
                        .fetch_add(keep as u64, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    }

    /// True once a kill point has fired.
    pub fn is_dead(&self) -> bool {
        self.file.lock().expect("wal file lock").dead
    }
}

// ---------------------------------------------------------------------
// Checkpoints and the durable directory
// ---------------------------------------------------------------------

fn segment_path(dir: &Path, base_seq: u64) -> PathBuf {
    dir.join(format!("wal-{base_seq:020}.log"))
}

fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{seq:020}.snap"))
}

/// Writes a checkpoint file atomically: `[magic][version][crc][seq]
/// [snapshot]`, via tmp + fsync + rename so a crash mid-checkpoint
/// leaves the previous checkpoint intact.
fn write_checkpoint(dir: &Path, seq: u64, snapshot: &[u8]) -> Result<(), WalError> {
    let mut body = Vec::with_capacity(8 + snapshot.len());
    put_u64(&mut body, seq);
    body.extend_from_slice(snapshot);
    let mut out = Vec::with_capacity(body.len() + 16);
    out.extend_from_slice(CHECKPOINT_MAGIC);
    out.push(VERSION);
    put_u32(&mut out, crc32(&body));
    out.extend_from_slice(&body);

    let tmp = dir.join(format!("checkpoint-{seq:020}.tmp"));
    let final_path = checkpoint_path(dir, seq);
    let mut file = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&tmp)?;
    file.write_all(&out)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, &final_path)?;
    Ok(())
}

/// Reads and validates one checkpoint file; returns `(seq, wm)`.
fn read_checkpoint(path: &Path) -> Result<(u64, WorkingMemory), WalError> {
    let buf = fs::read(path)?;
    let mut r = Reader::new(&buf);
    if r.take(4)? != CHECKPOINT_MAGIC || r.u8()? != VERSION {
        return Err(CodecError::BadHeader.into());
    }
    let crc = r.u32()?;
    let body = &buf[r.pos()..];
    if crc32(body) != crc {
        return Err(CodecError::Corrupt { at: r.pos() }.into());
    }
    let mut br = Reader::new(body);
    let seq = br.u64()?;
    let wm = WorkingMemory::decode_snapshot(&body[br.pos()..])?;
    Ok((seq, wm))
}

/// The write side of a durable working memory: a checkpoint + the
/// current WAL segment, rooted at a directory.
pub struct DurableWm {
    dir: PathBuf,
    writer: WalWriter,
}

impl DurableWm {
    /// Initialises a durability directory: writes a checkpoint of `wm`
    /// at `base_seq` (the last committed sequence number, 0 for a
    /// fresh start) and opens a new segment for subsequent commits.
    /// Also used on resume-after-recovery — rewriting from a fresh
    /// checkpoint means the torn tail of the previous incarnation is
    /// repaired implicitly (old files are removed).
    pub fn create(dir: &Path, wm: &WorkingMemory, base_seq: u64) -> Result<DurableWm, WalError> {
        fs::create_dir_all(dir)?;
        let snapshot = wm.encode_snapshot()?;
        write_checkpoint(dir, base_seq, &snapshot)?;
        // Drop any files from a previous incarnation.
        prune(dir, base_seq)?;
        let file = Arc::new(WalWriter::open_segment(dir, base_seq)?);
        let writer = WalWriter {
            file: Mutex::new(WalFile {
                file,
                pending: Vec::new(),
                appended_seq: base_seq,
                pending_records: 0,
                dead: false,
            }),
            io: Mutex::new(()),
            sync: Mutex::new(SyncState {
                durable_seq: base_seq,
                syncing: false,
                requested: base_seq,
            }),
            cond: Condvar::new(),
            stats: StatCells::default(),
        };
        writer.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(DurableWm { dir: dir.to_path_buf(), writer })
    }

    /// The group-committing writer.
    pub fn writer(&self) -> &WalWriter {
        &self.writer
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Rotates the log at checkpoint `seq`: flushes + fsyncs the old
    /// segment (so it is complete and durable), then opens a fresh
    /// segment based at `seq`. Call under the engine's base mutex with
    /// `seq` = the just-committed sequence number; pass the snapshot
    /// encoded under that same mutex to [`DurableWm::install_checkpoint`]
    /// *outside* the mutex (the snapshot write is the slow part).
    pub fn rotate(&self, seq: u64) -> Result<(), WalError> {
        // io before file: wait out any in-flight flush so the old
        // segment is truly complete before we seal and replace it.
        let _io = self.writer.io.lock().expect("wal io lock");
        let mut f = self.writer.file.lock().expect("wal file lock");
        if f.dead {
            return Err(WalError::Dead);
        }
        // Flush everything pending into the old segment.
        if !f.pending.is_empty() {
            let pending = std::mem::take(&mut f.pending);
            let records = std::mem::take(&mut f.pending_records);
            (&*f.file).write_all(&pending)?;
            self.writer.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
            self.writer
                .stats
                .synced_records
                .fetch_add(records, Ordering::Relaxed);
            self.writer
                .stats
                .bytes_written
                .fetch_add(pending.len() as u64, Ordering::Relaxed);
        }
        f.file.sync_all()?;
        let horizon = f.appended_seq;
        debug_assert!(horizon == seq, "rotate at the just-committed seq");
        f.file = Arc::new(WalWriter::open_segment(&self.dir, seq)?);
        drop(f);
        let mut s = self.writer.sync.lock().expect("wal sync lock");
        if horizon > s.durable_seq {
            s.durable_seq = horizon;
        }
        drop(s);
        self.writer.cond.notify_all();
        Ok(())
    }

    /// Writes the checkpoint snapshot for a rotation done at `seq` and
    /// prunes files it obsoletes. Slow-path work — call outside the
    /// engine's base mutex.
    pub fn install_checkpoint(&self, seq: u64, snapshot: &[u8]) -> Result<(), WalError> {
        write_checkpoint(&self.dir, seq, snapshot)?;
        self.writer.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
        prune(&self.dir, seq)?;
        Ok(())
    }
}

/// Removes segments and checkpoints strictly older than the checkpoint
/// at `keep_seq` (their effects are contained in that checkpoint).
fn prune(dir: &Path, keep_seq: u64) -> Result<(), WalError> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let stale = if let Some(seq) = parse_numbered(&name, "wal-", ".log") {
            seq < keep_seq
        } else if let Some(seq) = parse_numbered(&name, "checkpoint-", ".snap") {
            seq < keep_seq
        } else {
            name.ends_with(".tmp")
        };
        if stale {
            fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse::<u64>()
        .ok()
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

/// The result of crash recovery: the reconstructed working memory plus
/// the positions the engine needs to resume cleanly.
#[derive(Debug)]
pub struct Recovered {
    /// Working memory as of the last durable commit.
    pub wm: WorkingMemory,
    /// Sequence number of the last durable commit (`next_seq` for the
    /// resumed engine is this + 1).
    pub last_seq: u64,
    /// Sequence number of the checkpoint recovery started from.
    pub checkpoint_seq: u64,
    /// Redo records replayed from the log suffix.
    pub replayed: u64,
    /// `true` if a torn tail was truncated from the last segment.
    pub torn_tail: bool,
}

/// ARIES-lite recovery: load the newest valid checkpoint, redo the log
/// suffix, stop at the torn tail (last segment only). Returns the
/// recovered state and resume positions; refuses on genuine mid-log
/// corruption, a sequence gap, or a torn *non-final* segment.
pub fn recover(dir: &Path) -> Result<Recovered, WalError> {
    // Newest checkpoint that validates wins; older ones are fallback
    // only if the newest fails its CRC (a crash mid-rename can't cause
    // that, but a half-written tmp never got renamed anyway).
    let mut checkpoints: Vec<u64> = Vec::new();
    let mut segments: Vec<u64> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy().into_owned();
        if let Some(seq) = parse_numbered(&name, "checkpoint-", ".snap") {
            checkpoints.push(seq);
        } else if let Some(seq) = parse_numbered(&name, "wal-", ".log") {
            segments.push(seq);
        }
    }
    checkpoints.sort_unstable();
    segments.sort_unstable();

    let (checkpoint_seq, wm) = {
        let mut found = None;
        for &seq in checkpoints.iter().rev() {
            match read_checkpoint(&checkpoint_path(dir, seq)) {
                Ok(pair) => {
                    found = Some(pair);
                    break;
                }
                Err(WalError::Codec(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        found.ok_or(WalError::NoCheckpoint)?
    };
    let mut wm = wm;
    let mut last_seq = checkpoint_seq;
    let mut replayed = 0u64;
    let mut torn_tail = false;

    // Redo segments based at or after the checkpoint, in order.
    let redo: Vec<u64> = segments
        .iter()
        .copied()
        .filter(|&b| b >= checkpoint_seq)
        .collect();
    for (i, &base) in redo.iter().enumerate() {
        let buf = fs::read(segment_path(dir, base))?;
        let mut r = Reader::new(&buf);
        if buf.len() < SEGMENT_HEADER_LEN || r.take(4)? != SEGMENT_MAGIC || r.u8()? != VERSION {
            return Err(CodecError::BadHeader.into());
        }
        let header_base = r.u64()?;
        if header_base != base {
            return Err(CodecError::Corrupt { at: 5 }.into());
        }
        let scan = scan_records(&buf, SEGMENT_HEADER_LEN)?;
        if scan.torn {
            if i + 1 != redo.len() {
                // A torn non-final segment cannot happen from a single
                // crash (rotation fsyncs the old segment before opening
                // the next); treat as corruption.
                return Err(CodecError::Corrupt { at: scan.valid_len }.into());
            }
            torn_tail = true;
        }
        for rec in scan.records {
            if rec.seq <= last_seq {
                // Already contained in the checkpoint; skip (redo is
                // idempotent at batch granularity).
                continue;
            }
            if rec.seq != last_seq + 1 {
                return Err(CodecError::Corrupt { at: scan.valid_len }.into());
            }
            apply_changes_atomic(&mut wm, &rec.changes)?;
            last_seq = rec.seq;
            replayed += 1;
        }
    }

    Ok(Recovered { wm, last_seq, checkpoint_seq, replayed, torn_tail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeltaSet, Value, WmeData};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dps-wal-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn commit(wm: &mut WorkingMemory, i: i64) -> Vec<Change> {
        let mut d = DeltaSet::new();
        d.create(WmeData::new("log").with("i", i));
        wm.apply(&d).unwrap()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn wal_roundtrip_recovers_all_commits() {
        let dir = tmp_dir("roundtrip");
        let mut wm = WorkingMemory::new();
        let durable = DurableWm::create(&dir, &wm, 0).unwrap();
        for seq in 1..=10u64 {
            let changes = commit(&mut wm, seq as i64);
            durable.writer().append(seq, &changes).unwrap();
            durable.writer().sync_to(seq).unwrap();
        }
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.last_seq, 10);
        assert_eq!(rec.checkpoint_seq, 0);
        assert_eq!(rec.replayed, 10);
        assert!(!rec.torn_tail);
        assert_eq!(
            rec.wm.encode_snapshot().unwrap(),
            wm.encode_snapshot().unwrap()
        );
        let stats = durable.writer().stats();
        assert_eq!(stats.appends, 10);
        assert_eq!(stats.synced_records, 10);
        assert!(stats.fsyncs >= 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clean_kill_loses_exactly_the_unsynced_suffix() {
        let dir = tmp_dir("clean-kill");
        let mut wm = WorkingMemory::new();
        let durable = DurableWm::create(&dir, &wm, 0).unwrap();
        let mut states = Vec::new();
        for seq in 1..=6u64 {
            let changes = commit(&mut wm, seq as i64);
            durable.writer().append(seq, &changes).unwrap();
            if seq <= 4 {
                durable.writer().sync_to(seq).unwrap();
                states.push(wm.encode_snapshot().unwrap());
            }
        }
        // Commits 5 and 6 were published but never fsynced.
        durable.writer().kill(KillMode::Clean).unwrap();
        assert!(durable.writer().append(7, &[]).is_err());
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.last_seq, 4);
        assert!(!rec.torn_tail);
        assert_eq!(rec.wm.encode_snapshot().unwrap(), states[3]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_kill_truncates_the_tail_record() {
        let dir = tmp_dir("torn-kill");
        let mut wm = WorkingMemory::new();
        let durable = DurableWm::create(&dir, &wm, 0).unwrap();
        for seq in 1..=5u64 {
            let changes = commit(&mut wm, seq as i64);
            durable.writer().append(seq, &changes).unwrap();
        }
        durable.writer().kill(KillMode::Torn).unwrap();
        let rec = recover(&dir).unwrap();
        // Records 1–4 land whole, record 5 is torn and truncated.
        assert_eq!(rec.last_seq, 4);
        assert!(rec.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_rejected_not_truncated() {
        let dir = tmp_dir("corrupt");
        let mut wm = WorkingMemory::new();
        let durable = DurableWm::create(&dir, &wm, 0).unwrap();
        for seq in 1..=5u64 {
            let changes = commit(&mut wm, seq as i64);
            durable.writer().append(seq, &changes).unwrap();
            durable.writer().sync_to(seq).unwrap();
        }
        // Flip a byte inside the SECOND record (valid data follows).
        let path = segment_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        let first_len = u32::from_le_bytes(
            bytes[SEGMENT_HEADER_LEN..SEGMENT_HEADER_LEN + 4]
                .try_into()
                .unwrap(),
        ) as usize;
        let second = SEGMENT_HEADER_LEN + 8 + first_len + 12;
        bytes[second] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        match recover(&dir) {
            Err(WalError::Codec(CodecError::Corrupt { .. })) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_byte_truncation_of_the_tail_recovers_a_prefix() {
        // The torn-tail rule, exhaustively: cut the (single-segment)
        // WAL at every byte boundary after the header; recovery must
        // yield exactly the commit prefix whose records survived whole.
        let dir = tmp_dir("cutpoints");
        let mut wm = WorkingMemory::new();
        let durable = DurableWm::create(&dir, &wm, 0).unwrap();
        let mut snapshots = vec![wm.encode_snapshot().unwrap()];
        let mut boundaries = vec![SEGMENT_HEADER_LEN];
        let path = segment_path(&dir, 0);
        for seq in 1..=4u64 {
            let changes = commit(&mut wm, seq as i64);
            durable.writer().append(seq, &changes).unwrap();
            durable.writer().sync_to(seq).unwrap();
            snapshots.push(wm.encode_snapshot().unwrap());
            boundaries.push(fs::metadata(&path).unwrap().len() as usize);
        }
        let full = fs::read(&path).unwrap();
        for cut in SEGMENT_HEADER_LEN..=full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let rec = recover(&dir).unwrap();
            // Which commit prefix should survive this cut?
            let expect = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(rec.last_seq, expect as u64, "cut at {cut}");
            assert_eq!(
                rec.wm.encode_snapshot().unwrap(),
                snapshots[expect],
                "cut at {cut}"
            );
            assert_eq!(rec.torn_tail, cut != boundaries[expect], "cut at {cut}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_checkpoints_and_prunes() {
        let dir = tmp_dir("rotate");
        let mut wm = WorkingMemory::new();
        let durable = DurableWm::create(&dir, &wm, 0).unwrap();
        for seq in 1..=3u64 {
            let changes = commit(&mut wm, seq as i64);
            durable.writer().append(seq, &changes).unwrap();
        }
        durable.rotate(3).unwrap();
        let snap = wm.encode_snapshot().unwrap();
        durable.install_checkpoint(3, &snap).unwrap();
        for seq in 4..=5u64 {
            let changes = commit(&mut wm, seq as i64);
            durable.writer().append(seq, &changes).unwrap();
            durable.writer().sync_to(seq).unwrap();
        }
        // Old segment + old checkpoint pruned.
        assert!(!segment_path(&dir, 0).exists());
        assert!(!checkpoint_path(&dir, 0).exists());
        assert!(segment_path(&dir, 3).exists());
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.checkpoint_seq, 3);
        assert_eq!(rec.last_seq, 5);
        assert_eq!(rec.replayed, 2);
        assert_eq!(rec.wm.encode_snapshot().unwrap(), wm.encode_snapshot().unwrap());
        let stats = durable.writer().stats();
        assert_eq!(stats.checkpoints, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_shares_fsyncs_across_threads() {
        let dir = tmp_dir("group");
        let mut wm = WorkingMemory::new();
        // Pre-build batches serially (WM itself is not the system under
        // test here — the writer is).
        let batches: Vec<Vec<Change>> = (1..=64i64).map(|i| commit(&mut wm, i)).collect();
        let durable = std::sync::Arc::new(DurableWm::create(&dir, &WorkingMemory::new(), 0).unwrap());
        let next = std::sync::Arc::new(Mutex::new((1u64, batches)));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let durable = durable.clone();
            let next = next.clone();
            handles.push(std::thread::spawn(move || loop {
                let seq = {
                    let mut n = next.lock().unwrap();
                    if n.1.is_empty() {
                        return;
                    }
                    let seq = n.0;
                    let batch = n.1.remove(0);
                    // Append under the allocation lock = seq-ordered.
                    durable.writer().append(seq, &batch).unwrap();
                    n.0 += 1;
                    seq
                };
                durable.writer().sync_to(seq).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = durable.writer().stats();
        assert_eq!(stats.appends, 64);
        assert_eq!(stats.synced_records, 64);
        assert!(
            stats.fsyncs <= 64,
            "group commit should not fsync more than once per record"
        );
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.last_seq, 64);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_crc_guards_bitrot() {
        let dir = tmp_dir("ckpt-crc");
        let mut wm = WorkingMemory::new();
        wm.insert(WmeData::new("x").with("k", Value::Int(1)));
        let durable = DurableWm::create(&dir, &wm, 0).unwrap();
        drop(durable);
        let path = checkpoint_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(recover(&dir), Err(WalError::NoCheckpoint)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_after_recovery_continues_the_log() {
        let dir = tmp_dir("resume");
        let mut wm = WorkingMemory::new();
        let durable = DurableWm::create(&dir, &wm, 0).unwrap();
        for seq in 1..=3u64 {
            let changes = commit(&mut wm, seq as i64);
            durable.writer().append(seq, &changes).unwrap();
        }
        durable.writer().sync_to(2).ok();
        durable.writer().kill(KillMode::Clean).unwrap();

        let rec = recover(&dir).unwrap();
        let mut wm2 = rec.wm;
        let base = rec.last_seq;
        // New incarnation: fresh checkpoint at the recovered seq.
        let durable2 = DurableWm::create(&dir, &wm2, base).unwrap();
        for off in 1..=2u64 {
            let changes = commit(&mut wm2, 100 + off as i64);
            durable2.writer().append(base + off, &changes).unwrap();
            durable2.writer().sync_to(base + off).unwrap();
        }
        let rec2 = recover(&dir).unwrap();
        assert_eq!(rec2.last_seq, base + 2);
        assert_eq!(
            rec2.wm.encode_snapshot().unwrap(),
            wm2.encode_snapshot().unwrap()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

}
