//! Working-memory elements: identity, payload and recency.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Atom, Value};

/// Stable identifier of a WME within one [`crate::WorkingMemory`].
///
/// Ids are never reused, so a `WmeId` seen by a matcher or held as a lock
/// resource always denotes the same logical tuple, even after it has been
/// removed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WmeId(pub u64);

impl fmt::Debug for WmeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl fmt::Display for WmeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Monotonic recency stamp assigned at insertion (and refreshed by
/// `modify`). Used by LEX/MEA conflict resolution.
pub type Timestamp = u64;

/// The payload of a WME before it enters working memory: a class name and
/// attribute/value pairs. Identity and recency are assigned by the store.
///
/// ```
/// use dps_wm::{WmeData, Value};
/// let d = WmeData::new("order").with("item", "bolt").with("qty", 40i64);
/// assert_eq!(d.class.as_str(), "order");
/// assert_eq!(d.attrs.get("qty"), Some(&Value::Int(40)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WmeData {
    /// The class (relation name) this element belongs to.
    pub class: Atom,
    /// Attribute → value map. A `BTreeMap` keeps iteration deterministic,
    /// which keeps matcher behaviour and test output reproducible.
    pub attrs: BTreeMap<Atom, Value>,
}

impl WmeData {
    /// Creates an empty element of the given class.
    pub fn new(class: impl Into<Atom>) -> Self {
        WmeData {
            class: class.into(),
            attrs: BTreeMap::new(),
        }
    }

    /// Builder-style attribute setter.
    #[must_use]
    pub fn with(mut self, attr: impl Into<Atom>, value: impl Into<Value>) -> Self {
        self.attrs.insert(attr.into(), value.into());
        self
    }

    /// Sets an attribute in place.
    pub fn set(&mut self, attr: impl Into<Atom>, value: impl Into<Value>) {
        self.attrs.insert(attr.into(), value.into());
    }

    /// Gets an attribute value; absent attributes read as `None`.
    pub fn get(&self, attr: &str) -> Option<&Value> {
        self.attrs.get(attr)
    }
}

/// A working-memory element as stored: payload plus identity and recency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Wme {
    /// Stable identity.
    pub id: WmeId,
    /// Payload.
    pub data: WmeData,
    /// Recency stamp (monotonic per working memory).
    pub timestamp: Timestamp,
}

impl Wme {
    /// The element's class.
    pub fn class(&self) -> &Atom {
        &self.data.class
    }

    /// Reads an attribute; returns `None` when absent.
    pub fn get(&self, attr: &str) -> Option<&Value> {
        self.data.get(attr)
    }

    /// Reads an attribute, treating absence as [`Value::Nil`].
    pub fn get_or_nil(&self, attr: &str) -> Value {
        self.data.get(attr).cloned().unwrap_or(Value::Nil)
    }
}

impl fmt::Display for Wme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} {} [t{}]", self.id, self.data.class, self.timestamp)?;
        for (k, v) in &self.data.attrs {
            write!(f, " ^{k} {v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_attributes() {
        let d = WmeData::new("c").with("a", 1i64).with("b", "x");
        assert_eq!(d.get("a"), Some(&Value::Int(1)));
        assert_eq!(d.get("b"), Some(&Value::from("x")));
        assert_eq!(d.get("missing"), None);
    }

    #[test]
    fn set_overwrites() {
        let mut d = WmeData::new("c").with("a", 1i64);
        d.set("a", 2i64);
        assert_eq!(d.get("a"), Some(&Value::Int(2)));
    }

    #[test]
    fn get_or_nil_on_absent() {
        let w = Wme {
            id: WmeId(1),
            data: WmeData::new("c"),
            timestamp: 3,
        };
        assert_eq!(w.get_or_nil("zzz"), Value::Nil);
    }

    #[test]
    fn display_is_ops5_like() {
        let w = Wme {
            id: WmeId(2),
            data: WmeData::new("goal").with("kind", "plan"),
            timestamp: 7,
        };
        assert_eq!(w.to_string(), "(w2 goal [t7] ^kind plan)");
    }

    #[test]
    fn attribute_iteration_is_sorted() {
        let d = WmeData::new("c")
            .with("z", 1i64)
            .with("a", 2i64)
            .with("m", 3i64);
        let keys: Vec<&str> = d.attrs.keys().map(|k| k.as_str()).collect();
        assert_eq!(keys, ["a", "m", "z"]);
    }
}
