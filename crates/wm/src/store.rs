//! The working memory store.

use std::collections::HashMap;

use crate::{
    Atom, Catalog, Change, Delta, DeltaSet, Relation, Timestamp, Value, WmError, Wme, WmeData,
    WmeId,
};

/// The production system's database: all live WMEs, partitioned by class,
/// plus the catalogue and the recency clock.
///
/// The store is a single-writer structure: concurrent engines serialise
/// commits through it (the paper's atomic commit point) while reads during
/// matching go through snapshots or the engine's own synchronisation.
/// `WorkingMemory` is `Clone`, which the execution-graph enumerator uses to
/// branch the state space.
///
/// ```
/// use dps_wm::{WorkingMemory, WmeData, DeltaSet, Value};
///
/// let mut wm = WorkingMemory::new();
/// let id = wm.insert(WmeData::new("counter").with("n", 0i64));
///
/// let mut delta = DeltaSet::new();
/// delta.modify(id, [("n".into(), Value::Int(1))]);
/// let changes = wm.apply(&delta).unwrap();
/// assert_eq!(changes.len(), 2); // Removed(old) + Added(new)
/// assert_eq!(wm.get(id).unwrap().get("n"), Some(&Value::Int(1)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct WorkingMemory {
    relations: HashMap<Atom, Relation>,
    /// Class of each live WME, for O(1) id → relation routing.
    class_of: HashMap<WmeId, Atom>,
    catalog: Catalog,
    next_id: u64,
    clock: Timestamp,
}

impl WorkingMemory {
    /// Creates an empty working memory.
    pub fn new() -> Self {
        WorkingMemory::default()
    }

    /// Total number of live elements.
    pub fn len(&self) -> usize {
        self.class_of.len()
    }

    /// `true` when working memory is empty.
    pub fn is_empty(&self) -> bool {
        self.class_of.is_empty()
    }

    /// The current value of the recency clock (timestamp of the most
    /// recent insertion).
    pub fn clock(&self) -> Timestamp {
        self.clock
    }

    /// The catalogue of classes.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Looks up a live element by id.
    pub fn get(&self, id: WmeId) -> Option<&Wme> {
        let class = self.class_of.get(&id)?;
        self.relations.get(class)?.get(id)
    }

    /// `true` when the element is live.
    pub fn contains(&self, id: WmeId) -> bool {
        self.class_of.contains_key(&id)
    }

    /// The relation for a class, if any element of it was ever inserted.
    pub fn relation(&self, class: &str) -> Option<&Relation> {
        self.relations.get(class)
    }

    /// Iterates all live elements of a class (empty if the class is
    /// unknown), in id order.
    pub fn class_iter<'a>(&'a self, class: &str) -> impl Iterator<Item = &'a Wme> {
        self.relations
            .get(class)
            .into_iter()
            .flat_map(Relation::iter)
    }

    /// Iterates all live elements across classes. Order is deterministic:
    /// classes in declaration order, tuples in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Wme> {
        self.catalog
            .classes()
            .filter_map(|c| self.relations.get(c))
            .flat_map(Relation::iter)
    }

    /// Inserts a new element immediately (outside any delta), returning
    /// its id. Used for initial working-memory setup.
    pub fn insert(&mut self, data: WmeData) -> WmeId {
        self.insert_internal(data).id
    }

    /// Inserts and returns the stored element (id + timestamp assigned).
    pub fn insert_full(&mut self, data: WmeData) -> Wme {
        self.insert_internal(data)
    }

    /// Removes an element immediately, returning it.
    pub fn remove(&mut self, id: WmeId) -> Result<Wme, WmError> {
        let class = self.class_of.remove(&id).ok_or(WmError::NoSuchWme(id))?;
        let wme = self
            .relations
            .get_mut(&class)
            .and_then(|r| r.remove(id))
            .ok_or(WmError::NoSuchWme(id))?;
        self.catalog.record_remove(&class);
        Ok(wme)
    }

    /// Applies a buffered delta set atomically, in order, returning the
    /// change log for incremental matching.
    ///
    /// Failure semantics: the delta set is validated against the current
    /// state *before* any mutation, so an `Err` leaves working memory
    /// untouched (the all-or-nothing commit of §4.2). Validation rejects
    /// operations on dead ids, including ids killed earlier in the same
    /// delta set.
    pub fn apply(&mut self, delta: &DeltaSet) -> Result<Vec<Change>, WmError> {
        // Pre-validate: track liveness through the delta sequence.
        let mut killed: Vec<WmeId> = Vec::new();
        for op in delta.ops() {
            match op {
                Delta::Create(_) => {}
                Delta::Modify { id, .. } => {
                    if !self.contains(*id) {
                        return Err(WmError::NoSuchWme(*id));
                    }
                    if killed.contains(id) {
                        return Err(WmError::ConflictingDelta(*id));
                    }
                }
                Delta::Remove(id) => {
                    if !self.contains(*id) {
                        return Err(WmError::NoSuchWme(*id));
                    }
                    if killed.contains(id) {
                        return Err(WmError::ConflictingDelta(*id));
                    }
                    killed.push(*id);
                }
            }
        }

        let mut changes = Vec::with_capacity(delta.len());
        for op in delta.ops() {
            match op {
                Delta::Create(data) => {
                    let wme = self.insert_internal(data.clone());
                    changes.push(Change::Added(wme));
                }
                Delta::Remove(id) => {
                    let wme = self.remove(*id).expect("validated above");
                    changes.push(Change::Removed(wme));
                }
                Delta::Modify {
                    id,
                    changes: attr_changes,
                } => {
                    // OPS5 modify: remove + re-insert under the same id
                    // with a fresh timestamp.
                    let old = self.remove(*id).expect("validated above");
                    let mut data = old.data.clone();
                    for (k, v) in attr_changes {
                        if matches!(v, Value::Nil) {
                            data.attrs.remove(k);
                        } else {
                            data.attrs.insert(k.clone(), v.clone());
                        }
                    }
                    let new = self.reinsert(*id, data);
                    changes.push(Change::Removed(old));
                    changes.push(Change::Added(new));
                }
            }
        }
        Ok(changes)
    }

    /// Undoes a change log produced by [`WorkingMemory::apply`] — used by
    /// engines that must roll back a committed-then-invalidated state in
    /// exploration mode (the execution-graph enumerator prefers cloning,
    /// but `undo` keeps single-copy exploration possible).
    pub fn undo(&mut self, changes: &[Change]) -> Result<(), WmError> {
        for change in changes.iter().rev() {
            match change {
                Change::Added(w) => {
                    self.remove(w.id)?;
                }
                Change::Removed(w) => {
                    // Restore with the original id and timestamp.
                    self.restore(w.clone());
                }
            }
        }
        Ok(())
    }

    fn insert_internal(&mut self, data: WmeData) -> Wme {
        let id = WmeId(self.next_id);
        self.next_id += 1;
        self.clock += 1;
        let wme = Wme {
            id,
            data,
            timestamp: self.clock,
        };
        self.store(wme.clone());
        wme
    }

    /// Re-insert under an existing id with a fresh timestamp (modify).
    fn reinsert(&mut self, id: WmeId, data: WmeData) -> Wme {
        self.clock += 1;
        let wme = Wme {
            id,
            data,
            timestamp: self.clock,
        };
        self.store(wme.clone());
        wme
    }

    /// Persistence hook: the raw id-allocator position.
    pub(crate) fn next_id_raw(&self) -> u64 {
        self.next_id
    }

    /// Persistence hook: installs an element exactly as persisted
    /// (identity and timestamp preserved; allocator and clock advanced
    /// past them).
    pub(crate) fn restore_raw(&mut self, wme: Wme) {
        self.restore(wme);
    }

    /// Persistence hook: directly positions the id allocator and clock.
    pub(crate) fn set_counters_raw(&mut self, next_id: u64, clock: Timestamp) {
        self.next_id = self.next_id.max(next_id);
        self.clock = self.clock.max(clock);
    }

    /// Persistence hook: overwrites a class's lifetime counters.
    pub(crate) fn set_class_counters(&mut self, class: &Atom, inserts: u64, removes: u64) {
        self.catalog.set_lifetime_counters(class, inserts, removes);
    }

    /// Restore an element exactly as it was (undo of a remove).
    fn restore(&mut self, wme: Wme) {
        self.next_id = self.next_id.max(wme.id.0 + 1);
        self.clock = self.clock.max(wme.timestamp);
        self.store(wme);
    }

    fn store(&mut self, wme: Wme) {
        let class = wme.data.class.clone();
        self.catalog.record_insert(&class);
        self.class_of.insert(wme.id, class.clone());
        self.relations.entry(class).or_default().insert(wme);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> (WorkingMemory, WmeId, WmeId) {
        let mut wm = WorkingMemory::new();
        let a = wm.insert(WmeData::new("task").with("state", "new").with("n", 1i64));
        let b = wm.insert(WmeData::new("task").with("state", "old").with("n", 2i64));
        (wm, a, b)
    }

    #[test]
    fn insert_assigns_fresh_ids_and_timestamps() {
        let (wm, a, b) = seeded();
        assert_ne!(a, b);
        let (wa, wb) = (wm.get(a).unwrap(), wm.get(b).unwrap());
        assert!(wb.timestamp > wa.timestamp);
        assert_eq!(wm.len(), 2);
        assert_eq!(wm.clock(), 2);
    }

    #[test]
    fn remove_then_get_is_none() {
        let (mut wm, a, _) = seeded();
        let out = wm.remove(a).unwrap();
        assert_eq!(out.id, a);
        assert!(wm.get(a).is_none());
        assert_eq!(wm.remove(a), Err(WmError::NoSuchWme(a)));
    }

    #[test]
    fn apply_modify_is_remove_plus_add_with_fresh_timestamp() {
        let (mut wm, a, _) = seeded();
        let before_ts = wm.get(a).unwrap().timestamp;
        let mut d = DeltaSet::new();
        d.modify(a, [(Atom::from("state"), Value::from("done"))]);
        let ch = wm.apply(&d).unwrap();
        assert_eq!(ch.len(), 2);
        assert!(matches!(&ch[0], Change::Removed(w) if w.id == a));
        assert!(matches!(&ch[1], Change::Added(w) if w.id == a && w.timestamp > before_ts));
        let w = wm.get(a).unwrap();
        assert_eq!(w.get("state"), Some(&Value::from("done")));
        assert_eq!(w.get("n"), Some(&Value::Int(1))); // untouched attr kept
    }

    #[test]
    fn modify_with_nil_drops_attribute() {
        let (mut wm, a, _) = seeded();
        let mut d = DeltaSet::new();
        d.modify(a, [(Atom::from("n"), Value::Nil)]);
        wm.apply(&d).unwrap();
        assert_eq!(wm.get(a).unwrap().get("n"), None);
    }

    #[test]
    fn apply_is_all_or_nothing_on_dead_id() {
        let (mut wm, a, _) = seeded();
        let ghost = WmeId(999);
        let mut d = DeltaSet::new();
        d.create(WmeData::new("side_effect"));
        d.remove(ghost);
        let before = wm.len();
        assert_eq!(wm.apply(&d), Err(WmError::NoSuchWme(ghost)));
        assert_eq!(wm.len(), before, "failed apply must not mutate");
        assert!(wm.relation("side_effect").is_none());
        let _ = a;
    }

    #[test]
    fn apply_rejects_use_after_remove_within_delta() {
        let (mut wm, a, _) = seeded();
        let mut d = DeltaSet::new();
        d.remove(a);
        d.modify(a, []);
        assert_eq!(wm.apply(&d), Err(WmError::ConflictingDelta(a)));
        assert!(wm.contains(a));
    }

    #[test]
    fn undo_restores_exact_state() {
        let (mut wm, a, b) = seeded();
        let snapshot: Vec<Wme> = wm.iter().cloned().collect();
        let mut d = DeltaSet::new();
        d.remove(b);
        d.modify(a, [(Atom::from("n"), Value::Int(99))]);
        d.create(WmeData::new("extra"));
        let ch = wm.apply(&d).unwrap();
        wm.undo(&ch).unwrap();
        let after: Vec<Wme> = wm.iter().cloned().collect();
        assert_eq!(snapshot, after);
    }

    #[test]
    fn class_iter_and_catalog() {
        let (wm, _, _) = seeded();
        assert_eq!(wm.class_iter("task").count(), 2);
        assert_eq!(wm.class_iter("ghost").count(), 0);
        assert_eq!(wm.catalog().stats("task").unwrap().cardinality, 2);
    }

    #[test]
    fn ids_are_never_reused() {
        let mut wm = WorkingMemory::new();
        let a = wm.insert(WmeData::new("c"));
        wm.remove(a).unwrap();
        let b = wm.insert(WmeData::new("c"));
        assert_ne!(a, b);
    }

    #[test]
    fn clone_branches_state() {
        let (mut wm, a, _) = seeded();
        let fork = wm.clone();
        wm.remove(a).unwrap();
        assert!(fork.contains(a));
        assert!(!wm.contains(a));
    }

    #[test]
    fn insert_full_returns_stored_element() {
        let mut wm = WorkingMemory::new();
        let w = wm.insert_full(WmeData::new("c").with("k", 1i64));
        assert_eq!(wm.get(w.id), Some(&w));
    }
}
