//! Multi-version working memory: bounded per-element version chains.
//!
//! The MVCC read path (ROADMAP item 3) replaces the paper's `R_c`
//! condition-read locks with snapshot reads: a production pins the
//! commit sequence number current at claim time and evaluates its
//! condition against working memory *as of* that sequence, so condition
//! reads never block and never abort. This module is the substrate: a
//! [`VersionedStore`] keeps, for every element ever touched, a bounded
//! chain of [`Version`]s stamped with the commit sequence numbers the
//! engine's delta log already assigns (sequence 0 is the initial
//! working memory; a removal installs a tombstone).
//!
//! The store is plain data with `&mut` writers — the engine wraps it in
//! its own synchronisation (writes happen inside the commit critical
//! section that assigns sequence numbers, so chains are totally ordered
//! by construction). Garbage collection is watermark-driven: the caller
//! computes a floor (the oldest still-pinned snapshot) and [`gc`]
//! drops every version that no pinned or future snapshot can observe.
//!
//! ```
//! use dps_wm::{Change, VersionedStore, Wme, WmeData, WmeId, WorkingMemory};
//!
//! let mut wm = WorkingMemory::new();
//! let id = wm.insert(WmeData::new("task").with("state", "todo"));
//!
//! let mut vs = VersionedStore::new(8);
//! vs.seed(&wm);
//! assert_eq!(vs.as_of(id, 0).unwrap().get("state").unwrap().to_string(), "todo");
//!
//! // Commit 1 rewrites the element: snapshot 0 still sees the old row.
//! let old = wm.get(id).unwrap().clone();
//! let new = Wme { data: WmeData::new("task").with("state", "done"), ..old.clone() };
//! vs.record(1, &[Change::Removed(old), Change::Added(new)]);
//! assert_eq!(vs.as_of(id, 0).unwrap().get("state").unwrap().to_string(), "todo");
//! assert_eq!(vs.as_of(id, 1).unwrap().get("state").unwrap().to_string(), "done");
//! ```
//!
//! [`gc`]: VersionedStore::gc

use std::collections::HashMap;

use crate::{Atom, Change, Wme, WmeId, WorkingMemory};

/// One committed state of one element: the payload as of `seq`, or a
/// tombstone (`None`) if the commit removed it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Version {
    /// The installing commit sequence number (0 = initial WM).
    pub seq: u64,
    /// The element's state, `None` for a removal tombstone.
    pub state: Option<Wme>,
}

#[derive(Clone, Debug, Default)]
struct Chain {
    /// Versions in ascending `seq` order (at most one per sequence:
    /// a modify's remove+add pair coalesces into the final state).
    versions: Vec<Version>,
}

/// Aggregate store statistics (for reports and GC sanity checks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VersionStats {
    /// Live chains (elements with at least one retained version).
    pub chains: usize,
    /// Total retained versions across all chains.
    pub versions: usize,
    /// Versions dropped by GC and cap enforcement since creation.
    pub pruned: u64,
    /// Highest commit sequence recorded.
    pub last_seq: u64,
}

/// The multi-version store: per-element version chains plus the
/// per-class last-write index the engine's commit-time validation uses
/// for negated conditions.
#[derive(Clone, Debug)]
pub struct VersionedStore {
    chains: HashMap<WmeId, Chain>,
    /// Last commit sequence that inserted into or removed from each
    /// class — any write to a class can flip a negated condition over
    /// it, so snapshot validation compares this against the pinned
    /// sequence.
    class_write: HashMap<Atom, u64>,
    /// Soft per-chain bound: versions older than the GC floor are
    /// dropped eagerly once a chain exceeds this length (the floor
    /// keeps pinned snapshots safe; versions above it are never capped).
    cap: usize,
    /// The floor passed to the last [`VersionedStore::gc`] call; no
    /// pinned snapshot is below it.
    floor: u64,
    pruned: u64,
    last_seq: u64,
}

impl VersionedStore {
    /// Creates an empty store with the given per-chain soft bound
    /// (minimum 2: a chain must be able to hold a base version plus a
    /// successor).
    pub fn new(cap: usize) -> Self {
        VersionedStore {
            chains: HashMap::new(),
            class_write: HashMap::new(),
            cap: cap.max(2),
            floor: 0,
            pruned: 0,
            last_seq: 0,
        }
    }

    /// Installs the initial working memory as version 0 of every
    /// element. Call once, before any [`VersionedStore::record`].
    pub fn seed(&mut self, wm: &WorkingMemory) {
        for wme in wm.iter() {
            self.chains.entry(wme.id).or_default().versions.push(Version {
                seq: 0,
                state: Some(wme.clone()),
            });
        }
    }

    /// Records one committed delta batch under its commit sequence.
    /// Sequences must be recorded in increasing order (they are: the
    /// engine assigns them inside its commit critical section). A
    /// modify's remove+add pair coalesces into one version.
    pub fn record(&mut self, seq: u64, changes: &[Change]) {
        debug_assert!(seq > self.last_seq, "commit sequences must increase");
        self.last_seq = self.last_seq.max(seq);
        // Final state per element for this batch, in change order.
        let mut finals: Vec<(WmeId, Option<&Wme>)> = Vec::new();
        for ch in changes {
            let (id, state) = match ch {
                Change::Added(w) => (w.id, Some(w)),
                Change::Removed(w) => (w.id, None),
            };
            self.class_write.insert(ch.wme().class().clone(), seq);
            match finals.iter_mut().find(|(i, _)| *i == id) {
                Some(slot) => slot.1 = state,
                None => finals.push((id, state)),
            }
        }
        for (id, state) in finals {
            let chain = self.chains.entry(id).or_default();
            chain.versions.push(Version {
                seq,
                state: state.cloned(),
            });
            // Soft cap: shed history below the GC floor eagerly so a
            // hot element's chain stays bounded between gc() calls.
            while chain.versions.len() > self.cap && prunable(chain, self.floor) {
                chain.versions.remove(0);
                self.pruned += 1;
            }
        }
    }

    /// The element's state as of snapshot `snap`: the newest version
    /// with `seq <= snap`. `None` if the element did not exist at that
    /// snapshot (never created, created later, or tombstoned).
    pub fn as_of(&self, id: WmeId, snap: u64) -> Option<&Wme> {
        self.version_at(id, snap).and_then(|v| v.state.as_ref())
    }

    /// Like [`VersionedStore::as_of`], but returns the whole
    /// [`Version`] so callers can learn *which* commit created the
    /// state they read (the reads-from edge of the SI checker).
    pub fn version_at(&self, id: WmeId, snap: u64) -> Option<&Version> {
        self.chains
            .get(&id)?
            .versions
            .iter()
            .rev()
            .find(|v| v.seq <= snap)
    }

    /// The element's newest recorded state (`None` if tombstoned or
    /// never recorded).
    pub fn latest(&self, id: WmeId) -> Option<&Wme> {
        self.chains
            .get(&id)?
            .versions
            .last()
            .and_then(|v| v.state.as_ref())
    }

    /// Last commit sequence that inserted into or removed from `class`
    /// (0 if never written). Any write to a class can flip a negated
    /// condition over it, so the engine's commit-time validation
    /// fast-path compares this against the pinned snapshot.
    pub fn class_write_seq(&self, class: &Atom) -> u64 {
        self.class_write.get(class).copied().unwrap_or(0)
    }

    /// Drops every version no snapshot at or above `floor` can observe:
    /// for each chain, versions strictly older than the newest version
    /// at or below `floor` (and whole chains whose element is
    /// tombstoned below the floor). Returns the number of versions
    /// dropped. `floor` is typically `min(oldest pinned snapshot,
    /// watermark)`.
    pub fn gc(&mut self, floor: u64) -> usize {
        self.floor = self.floor.max(floor);
        let mut dropped = 0;
        self.chains.retain(|_, chain| {
            while prunable(chain, floor) {
                chain.versions.remove(0);
                dropped += 1;
            }
            // A chain whose only survivor is a tombstone at or below
            // the floor is invisible to every future snapshot.
            if chain.versions.len() == 1
                && chain.versions[0].state.is_none()
                && chain.versions[0].seq <= floor
            {
                dropped += 1;
                return false;
            }
            !chain.versions.is_empty()
        });
        self.pruned += dropped as u64;
        dropped
    }

    /// Retained-chain / version / prune counters.
    pub fn stats(&self) -> VersionStats {
        VersionStats {
            chains: self.chains.len(),
            versions: self.chains.values().map(|c| c.versions.len()).sum(),
            pruned: self.pruned,
            last_seq: self.last_seq,
        }
    }

    /// Number of retained versions for one element (0 = untracked).
    pub fn chain_len(&self, id: WmeId) -> usize {
        self.chains.get(&id).map_or(0, |c| c.versions.len())
    }
}

/// `true` when the chain's oldest version can be dropped without
/// changing any read at or above `floor`: the *next* version must also
/// be at or below the floor (so the oldest is shadowed as a base).
fn prunable(chain: &Chain, floor: u64) -> bool {
    chain.versions.len() >= 2 && chain.versions[1].seq <= floor
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeltaSet, Value, WmeData};

    /// Applies a delta to `wm` and mirrors it into `vs` under `seq`.
    fn commit(wm: &mut WorkingMemory, vs: &mut VersionedStore, seq: u64, delta: &DeltaSet) {
        let changes = wm.apply(delta).unwrap();
        vs.record(seq, &changes);
    }

    fn setup() -> (WorkingMemory, VersionedStore, WmeId) {
        let mut wm = WorkingMemory::new();
        let id = wm.insert(WmeData::new("task").with("n", 0i64));
        let mut vs = VersionedStore::new(8);
        vs.seed(&wm);
        (wm, vs, id)
    }

    fn bump(id: WmeId, n: i64) -> DeltaSet {
        let mut d = DeltaSet::new();
        d.modify(id, [(Atom::from("n"), Value::Int(n))]);
        d
    }

    #[test]
    fn snapshots_see_their_own_era() {
        let (mut wm, mut vs, id) = setup();
        for seq in 1..=3 {
            commit(&mut wm, &mut vs, seq, &bump(id, seq as i64));
        }
        for snap in 0..=3u64 {
            let got = vs.as_of(id, snap).unwrap().get("n").cloned();
            assert_eq!(got, Some(Value::Int(snap as i64)), "snapshot {snap}");
        }
        // A future snapshot sees the newest version.
        assert_eq!(vs.as_of(id, 99), vs.latest(id));
    }

    #[test]
    fn removal_is_a_tombstone_not_amnesia() {
        let (mut wm, mut vs, id) = setup();
        let mut d = DeltaSet::new();
        d.remove(id);
        commit(&mut wm, &mut vs, 1, &d);
        assert!(vs.as_of(id, 0).is_some(), "history preserved");
        assert!(vs.as_of(id, 1).is_none(), "gone at and after the removal");
        assert!(vs.latest(id).is_none());
    }

    #[test]
    fn creates_are_invisible_to_older_snapshots() {
        let (mut wm, mut vs, _) = setup();
        let mut d = DeltaSet::new();
        d.create(WmeData::new("task").with("n", 7i64));
        let changes = wm.apply(&d).unwrap();
        let new_id = changes[0].wme().id;
        vs.record(1, &changes);
        assert!(vs.as_of(new_id, 0).is_none());
        assert!(vs.as_of(new_id, 1).is_some());
    }

    #[test]
    fn modify_coalesces_into_one_version() {
        let (mut wm, mut vs, id) = setup();
        commit(&mut wm, &mut vs, 1, &bump(id, 1));
        // remove + add under one seq must yield one chain entry.
        assert_eq!(vs.chain_len(id), 2);
        let v = vs.version_at(id, 1).unwrap();
        assert_eq!(v.seq, 1);
        assert!(v.state.is_some());
    }

    #[test]
    fn class_write_seq_tracks_the_newest_writer() {
        let (mut wm, mut vs, id) = setup();
        assert_eq!(vs.class_write_seq(&Atom::from("task")), 0);
        commit(&mut wm, &mut vs, 4, &bump(id, 4));
        assert_eq!(vs.class_write_seq(&Atom::from("task")), 4);
        assert_eq!(vs.class_write_seq(&Atom::from("other")), 0);
    }

    #[test]
    fn gc_preserves_reads_at_and_above_the_floor() {
        let (mut wm, mut vs, id) = setup();
        for seq in 1..=6 {
            commit(&mut wm, &mut vs, seq, &bump(id, seq as i64));
        }
        let dropped = vs.gc(4);
        assert!(dropped > 0);
        // Reads at/above the floor are intact …
        for snap in 4..=6u64 {
            let got = vs.as_of(id, snap).unwrap().get("n").cloned();
            assert_eq!(got, Some(Value::Int(snap as i64)), "snapshot {snap}");
        }
        // … and the base version survives for the floor itself.
        assert!(vs.chain_len(id) <= 3);
        assert_eq!(vs.stats().pruned, dropped as u64);
    }

    #[test]
    fn gc_drops_tombstoned_chains_below_the_floor() {
        let (mut wm, mut vs, id) = setup();
        let mut d = DeltaSet::new();
        d.remove(id);
        commit(&mut wm, &mut vs, 1, &d);
        vs.gc(2);
        assert_eq!(vs.chain_len(id), 0, "dead chain reclaimed");
        assert_eq!(vs.stats().chains, 0);
    }

    #[test]
    fn cap_bounds_hot_chains_between_gcs() {
        let (mut wm, vs, id) = setup();
        let mut vs_small = VersionedStore::new(2);
        vs_small.seed(&wm);
        drop(vs);
        for seq in 1..=10 {
            let changes = wm.apply(&bump(id, seq as i64)).unwrap();
            vs_small.record(seq, &changes);
            // Keep the floor current, as the engine's watermark would.
            vs_small.gc(seq.saturating_sub(1));
        }
        assert!(
            vs_small.chain_len(id) <= 3,
            "chain grew to {}",
            vs_small.chain_len(id)
        );
        // The newest state is always intact.
        assert_eq!(
            vs_small.latest(id).unwrap().get("n"),
            Some(&Value::Int(10))
        );
    }
}
