//! The system catalogue: class registry and statistics.
//!
//! Section 4.3 of the paper grounds relation-level lock escalation in the
//! catalogue: "Such a lock is equivalent to locking the appropriate tuple
//! in the 'SYSTEM-CATALOG' relation." The [`Catalog`] is that relation's
//! logical equivalent — it assigns each class a stable id usable as a lock
//! resource and tracks per-class statistics that escalation policies and
//! the static-partitioning analyser consult.

use std::collections::HashMap;

use crate::Atom;

/// Per-class statistics maintained by the store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Live tuple count.
    pub cardinality: usize,
    /// Total inserts over the store's lifetime.
    pub inserts: u64,
    /// Total removes over the store's lifetime.
    pub removes: u64,
}

/// Registry of classes known to a working memory.
///
/// Classes are registered implicitly on first insert (loose mode) or
/// explicitly via [`Catalog::declare`]; each receives a stable dense id.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    ids: HashMap<Atom, u32>,
    names: Vec<Atom>,
    stats: Vec<ClassStats>,
}

impl Catalog {
    /// Creates an empty catalogue.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Declares a class, returning its id (idempotent).
    pub fn declare(&mut self, class: impl Into<Atom>) -> u32 {
        let class = class.into();
        if let Some(&id) = self.ids.get(&class) {
            return id;
        }
        let id = self.names.len() as u32;
        self.ids.insert(class.clone(), id);
        self.names.push(class);
        self.stats.push(ClassStats::default());
        id
    }

    /// Looks up a class id.
    pub fn id_of(&self, class: &str) -> Option<u32> {
        self.ids.get(class).copied()
    }

    /// Looks up a class name by id.
    pub fn name_of(&self, id: u32) -> Option<&Atom> {
        self.names.get(id as usize)
    }

    /// Statistics for a class.
    pub fn stats(&self, class: &str) -> Option<&ClassStats> {
        let id = self.id_of(class)?;
        self.stats.get(id as usize)
    }

    /// Number of registered classes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when no classes are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All registered class names, in declaration order.
    pub fn classes(&self) -> impl Iterator<Item = &Atom> {
        self.names.iter()
    }

    pub(crate) fn record_insert(&mut self, class: &Atom) -> u32 {
        let id = self.declare(class.clone());
        let s = &mut self.stats[id as usize];
        s.cardinality += 1;
        s.inserts += 1;
        id
    }

    pub(crate) fn set_lifetime_counters(&mut self, class: &Atom, inserts: u64, removes: u64) {
        let id = self.declare(class.clone());
        let s = &mut self.stats[id as usize];
        s.inserts = inserts;
        s.removes = removes;
    }

    pub(crate) fn record_remove(&mut self, class: &Atom) {
        if let Some(&id) = self.ids.get(class) {
            let s = &mut self.stats[id as usize];
            s.cardinality = s.cardinality.saturating_sub(1);
            s.removes += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_is_idempotent_and_dense() {
        let mut c = Catalog::new();
        let a = c.declare("alpha");
        let b = c.declare("beta");
        assert_eq!(c.declare("alpha"), a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.name_of(1).unwrap().as_str(), "beta");
        assert_eq!(c.id_of("beta"), Some(1));
        assert_eq!(c.id_of("gamma"), None);
    }

    #[test]
    fn stats_track_inserts_and_removes() {
        let mut c = Catalog::new();
        let class = Atom::from("t");
        c.record_insert(&class);
        c.record_insert(&class);
        c.record_remove(&class);
        let s = c.stats("t").unwrap();
        assert_eq!(s.cardinality, 1);
        assert_eq!(s.inserts, 2);
        assert_eq!(s.removes, 1);
    }

    #[test]
    fn remove_of_unknown_class_is_noop() {
        let mut c = Catalog::new();
        c.record_remove(&Atom::from("ghost"));
        assert!(c.is_empty());
    }

    #[test]
    fn classes_iterates_in_declaration_order() {
        let mut c = Catalog::new();
        c.declare("z");
        c.declare("a");
        let names: Vec<&str> = c.classes().map(|a| a.as_str()).collect();
        assert_eq!(names, ["z", "a"]);
    }
}
