//! Persistence: snapshots and a redo log.
//!
//! The paper's opening motivation for *database* production systems is
//! that "expert system users are asking for knowledge sharing and
//! knowledge persistence, features found currently in databases". This
//! module provides the storage-engine half of that story:
//!
//! * [`WorkingMemory::encode_snapshot`] / [`WorkingMemory::decode_snapshot`]
//!   — a versioned, self-contained binary image of working memory
//!   (tuples, identity counters, recency clock, catalogue statistics);
//! * [`RedoLog`] — an append-only log of committed [`Change`] batches
//!   (exactly what [`WorkingMemory::apply`] returns at each production
//!   commit), replayable on top of a snapshot to recover the
//!   post-crash state.
//!
//! The format is hand-rolled (little-endian, length-prefixed) rather
//! than a serde format so the crate stays self-contained; a format
//! version byte guards evolution.

use std::fmt;

use crate::{Atom, Change, Value, Wme, WmeData, WmeId, WorkingMemory};

/// Magic bytes opening every snapshot.
const SNAPSHOT_MAGIC: &[u8; 4] = b"DPSW";
/// Magic bytes opening every redo log.
const LOG_MAGIC: &[u8; 4] = b"DPSL";
/// Current format version.
const VERSION: u8 = 1;

/// Errors raised while decoding persisted state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended prematurely.
    Truncated,
    /// Bad magic or unsupported version.
    BadHeader,
    /// An unknown tag byte.
    BadTag(u8),
    /// Embedded string is not UTF-8.
    BadString,
    /// A replayed removal referenced a dead element.
    ReplayConflict(WmeId),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "persisted data is truncated"),
            CodecError::BadHeader => write!(f, "bad magic bytes or unsupported version"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte {t:#x}"),
            CodecError::BadString => write!(f, "embedded string is not valid UTF-8"),
            CodecError::ReplayConflict(id) => {
                write!(
                    f,
                    "redo log removal of {id} does not match the base snapshot"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------
// Primitive readers/writers
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadString)
    }

    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Nil => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(3);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Sym(a) => {
            out.push(4);
            put_str(out, a.as_str());
        }
        Value::Str(a) => {
            out.push(5);
            put_str(out, a.as_str());
        }
    }
}

fn read_value(r: &mut Reader<'_>) -> Result<Value, CodecError> {
    Ok(match r.u8()? {
        0 => Value::Nil,
        1 => Value::Bool(r.u8()? != 0),
        2 => Value::Int(r.i64()?),
        3 => Value::Float(f64::from_bits(r.u64()?)),
        4 => Value::Sym(Atom::from(r.string()?)),
        5 => Value::Str(Atom::from(r.string()?)),
        t => return Err(CodecError::BadTag(t)),
    })
}

fn put_wme(out: &mut Vec<u8>, w: &Wme) {
    put_u64(out, w.id.0);
    put_u64(out, w.timestamp);
    put_str(out, w.data.class.as_str());
    put_u32(out, w.data.attrs.len() as u32);
    for (attr, value) in &w.data.attrs {
        put_str(out, attr.as_str());
        put_value(out, value);
    }
}

fn read_wme(r: &mut Reader<'_>) -> Result<Wme, CodecError> {
    let id = WmeId(r.u64()?);
    let timestamp = r.u64()?;
    let class = r.string()?;
    let n = r.u32()? as usize;
    let mut data = WmeData::new(class);
    for _ in 0..n {
        let attr = r.string()?;
        let value = read_value(r)?;
        data.set(attr, value);
    }
    Ok(Wme {
        id,
        data,
        timestamp,
    })
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

impl WorkingMemory {
    /// Serialises the complete working memory into a self-contained
    /// binary snapshot.
    pub fn encode_snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.len() * 32);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.push(VERSION);
        put_u64(&mut out, self.next_id_raw());
        put_u64(&mut out, self.clock());
        put_u64(&mut out, self.len() as u64);
        for wme in self.iter() {
            put_wme(&mut out, wme);
        }
        // Catalogue lifetime statistics (cardinality is recomputed).
        let classes: Vec<&Atom> = self.catalog().classes().collect();
        put_u32(&mut out, classes.len() as u32);
        for class in classes {
            let stats = self
                .catalog()
                .stats(class.as_str())
                .expect("registered class");
            put_str(&mut out, class.as_str());
            put_u64(&mut out, stats.inserts);
            put_u64(&mut out, stats.removes);
        }
        out
    }

    /// Reconstructs a working memory from a snapshot. The result is
    /// bit-identical in behaviour: same tuples, ids, timestamps, id
    /// allocator position and catalogue statistics.
    pub fn decode_snapshot(buf: &[u8]) -> Result<WorkingMemory, CodecError> {
        let mut r = Reader::new(buf);
        if r.take(4)? != SNAPSHOT_MAGIC || r.u8()? != VERSION {
            return Err(CodecError::BadHeader);
        }
        let next_id = r.u64()?;
        let clock = r.u64()?;
        let count = r.u64()? as usize;
        let mut wm = WorkingMemory::new();
        for _ in 0..count {
            let wme = read_wme(&mut r)?;
            wm.restore_raw(wme);
        }
        let nclasses = r.u32()? as usize;
        for _ in 0..nclasses {
            let class = r.string()?;
            let inserts = r.u64()?;
            let removes = r.u64()?;
            wm.set_class_counters(&Atom::from(class), inserts, removes);
        }
        wm.set_counters_raw(next_id, clock);
        if !r.at_end() {
            return Err(CodecError::BadHeader);
        }
        Ok(wm)
    }
}

// ---------------------------------------------------------------------
// Redo log
// ---------------------------------------------------------------------

/// An append-only redo log of committed change batches.
///
/// Append the change list returned by every [`WorkingMemory::apply`]
/// (one batch per production commit — the atomic unit of §4.2);
/// [`RedoLog::replay`] re-applies them to a working memory restored from
/// the snapshot taken when the log was started.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RedoLog {
    buf: Vec<u8>,
    batches: u64,
}

impl Default for RedoLog {
    fn default() -> Self {
        RedoLog::new()
    }
}

impl RedoLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(LOG_MAGIC);
        buf.push(VERSION);
        RedoLog { buf, batches: 0 }
    }

    /// Appends one committed batch.
    pub fn append(&mut self, changes: &[Change]) {
        put_u32(&mut self.buf, changes.len() as u32);
        for change in changes {
            match change {
                Change::Added(w) => {
                    self.buf.push(0);
                    put_wme(&mut self.buf, w);
                }
                Change::Removed(w) => {
                    self.buf.push(1);
                    put_wme(&mut self.buf, w);
                }
            }
        }
        self.batches += 1;
    }

    /// Number of appended batches (committed productions).
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// The serialised log.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Parses a serialised log (validates framing).
    pub fn from_bytes(buf: &[u8]) -> Result<RedoLog, CodecError> {
        let mut r = Reader::new(buf);
        if r.take(4)? != LOG_MAGIC || r.u8()? != VERSION {
            return Err(CodecError::BadHeader);
        }
        let mut batches = 0;
        while !r.at_end() {
            let n = r.u32()? as usize;
            for _ in 0..n {
                match r.u8()? {
                    0 | 1 => {
                        read_wme(&mut r)?;
                    }
                    t => return Err(CodecError::BadTag(t)),
                }
            }
            batches += 1;
        }
        Ok(RedoLog {
            buf: buf.to_vec(),
            batches,
        })
    }

    /// Replays the log onto `wm` (a working memory restored from the
    /// matching base snapshot). Returns the number of batches applied.
    pub fn replay(&self, wm: &mut WorkingMemory) -> Result<u64, CodecError> {
        let mut r = Reader::new(&self.buf);
        r.take(4)?;
        r.u8()?;
        let mut applied = 0;
        while !r.at_end() {
            let n = r.u32()? as usize;
            for _ in 0..n {
                let tag = r.u8()?;
                let wme = read_wme(&mut r)?;
                match tag {
                    0 => wm.restore_raw(wme),
                    1 => {
                        wm.remove(wme.id)
                            .map_err(|_| CodecError::ReplayConflict(wme.id))?;
                    }
                    t => return Err(CodecError::BadTag(t)),
                }
            }
            applied += 1;
        }
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeltaSet;

    fn populated() -> WorkingMemory {
        let mut wm = WorkingMemory::new();
        wm.insert(
            WmeData::new("job")
                .with("id", 1i64)
                .with("cost", 2.5f64)
                .with("name", String::from("mill"))
                .with("urgent", true),
        );
        let doomed = wm.insert(WmeData::new("tmp"));
        wm.insert(
            WmeData::new("job")
                .with("id", 2i64)
                .with("note", Value::Nil),
        );
        wm.remove(doomed).unwrap();
        wm
    }

    fn assert_same(a: &WorkingMemory, b: &WorkingMemory) {
        let av: Vec<&Wme> = a.iter().collect();
        let bv: Vec<Wme> = b.iter().cloned().collect();
        assert_eq!(av.len(), bv.len());
        for (x, y) in av.iter().zip(bv.iter()) {
            assert_eq!(**x, *y);
        }
        assert_eq!(a.clock(), b.clock());
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let wm = populated();
        let snap = wm.encode_snapshot();
        let back = WorkingMemory::decode_snapshot(&snap).unwrap();
        assert_same(&wm, &back);
        // Catalogue statistics survive too.
        assert_eq!(
            wm.catalog().stats("tmp").map(|s| (s.inserts, s.removes)),
            back.catalog().stats("tmp").map(|s| (s.inserts, s.removes)),
        );
    }

    #[test]
    fn restored_memory_allocates_fresh_ids() {
        let wm = populated();
        let mut back = WorkingMemory::decode_snapshot(&wm.encode_snapshot()).unwrap();
        let existing: Vec<WmeId> = back.iter().map(|w| w.id).collect();
        let fresh = back.insert(WmeData::new("job"));
        assert!(
            !existing.contains(&fresh),
            "id allocator position persisted"
        );
        let old_clock = wm.clock();
        assert!(back.get(fresh).unwrap().timestamp > old_clock);
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let wm = populated();
        let mut snap = wm.encode_snapshot();
        assert!(matches!(
            WorkingMemory::decode_snapshot(&snap[..10]),
            Err(CodecError::Truncated)
        ));
        snap[0] = b'X';
        assert!(matches!(
            WorkingMemory::decode_snapshot(&snap),
            Err(CodecError::BadHeader)
        ));
        let empty: Vec<u8> = Vec::new();
        assert!(WorkingMemory::decode_snapshot(&empty).is_err());
    }

    #[test]
    fn redo_log_recovers_post_snapshot_commits() {
        let mut wm = populated();
        let snap = wm.encode_snapshot();
        let mut log = RedoLog::new();

        // Three "commits" after the checkpoint.
        let id = wm.iter().next().unwrap().id;
        let mut d1 = DeltaSet::new();
        d1.modify(id, [(Atom::from("cost"), Value::Float(9.75))]);
        log.append(&wm.apply(&d1).unwrap());

        let mut d2 = DeltaSet::new();
        d2.create(WmeData::new("audit").with("of", 1i64));
        log.append(&wm.apply(&d2).unwrap());

        let victim = wm.class_iter("job").nth(1).unwrap().id;
        let mut d3 = DeltaSet::new();
        d3.remove(victim);
        log.append(&wm.apply(&d3).unwrap());

        assert_eq!(log.batches(), 3);

        // "Crash" and recover: snapshot + log replay.
        let mut recovered = WorkingMemory::decode_snapshot(&snap).unwrap();
        let parsed = RedoLog::from_bytes(log.as_bytes()).unwrap();
        assert_eq!(parsed.replay(&mut recovered).unwrap(), 3);
        assert_same(&wm, &recovered);

        // Recovery leaves the allocator usable.
        let fresh = recovered.insert(WmeData::new("job"));
        assert!(wm.get(fresh).is_none());
    }

    #[test]
    fn redo_log_framing_is_validated() {
        let mut log = RedoLog::new();
        let mut wm = WorkingMemory::new();
        let mut d = DeltaSet::new();
        d.create(WmeData::new("x"));
        log.append(&wm.apply(&d).unwrap());
        let mut bytes = log.as_bytes().to_vec();
        bytes.truncate(bytes.len() - 2);
        assert_eq!(RedoLog::from_bytes(&bytes), Err(CodecError::Truncated));
        assert!(RedoLog::from_bytes(b"nope").is_err());
    }

    #[test]
    fn replay_conflict_is_reported() {
        let mut wm = WorkingMemory::new();
        let id = wm.insert(WmeData::new("x"));
        let mut log = RedoLog::new();
        let removed = wm.remove(id).unwrap();
        log.append(&[Change::Removed(removed)]);
        // Replaying onto an EMPTY memory (wrong base) fails cleanly.
        let mut empty = WorkingMemory::new();
        assert_eq!(log.replay(&mut empty), Err(CodecError::ReplayConflict(id)));
    }

    #[test]
    fn empty_structures_roundtrip() {
        let wm = WorkingMemory::new();
        let back = WorkingMemory::decode_snapshot(&wm.encode_snapshot()).unwrap();
        assert!(back.is_empty());
        let log = RedoLog::new();
        assert_eq!(RedoLog::from_bytes(log.as_bytes()).unwrap().batches(), 0);
    }
}
