//! Persistence: snapshots and a redo log.
//!
//! The paper's opening motivation for *database* production systems is
//! that "expert system users are asking for knowledge sharing and
//! knowledge persistence, features found currently in databases". This
//! module provides the storage-engine half of that story:
//!
//! * [`WorkingMemory::encode_snapshot`] / [`WorkingMemory::decode_snapshot`]
//!   — a versioned, self-contained binary image of working memory
//!   (tuples, identity counters, recency clock, catalogue statistics);
//! * [`RedoLog`] — an append-only log of committed [`Change`] batches
//!   (exactly what [`WorkingMemory::apply`] returns at each production
//!   commit), replayable on top of a snapshot to recover the
//!   post-crash state.
//!
//! The file-backed, group-committed WAL built on the same record
//! grammar lives in [`crate::wal`]; this module owns the codec and the
//! **replay atomicity rule**: a batch is the paper's §4.2 atomic commit
//! unit, so recovery applies it all-or-nothing too
//! ([`apply_changes_atomic`] stages and validates the whole batch
//! before the first mutation).
//!
//! The format is hand-rolled (little-endian, length-prefixed) rather
//! than a serde format so the crate stays self-contained; a format
//! version byte guards evolution.

use std::fmt;

use crate::{Atom, Change, Value, Wme, WmeData, WmeId, WorkingMemory};

/// Magic bytes opening every snapshot.
const SNAPSHOT_MAGIC: &[u8; 4] = b"DPSW";
/// Magic bytes opening every redo log.
const LOG_MAGIC: &[u8; 4] = b"DPSL";
/// Current format version.
const VERSION: u8 = 1;

/// Errors raised while encoding or decoding persisted state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended prematurely.
    Truncated,
    /// Bad magic or unsupported version.
    BadHeader,
    /// An unknown tag byte.
    BadTag(u8),
    /// Embedded string is not UTF-8.
    BadString,
    /// Well-formed prefix followed by bytes that are not part of the
    /// document — distinct from [`CodecError::BadHeader`] so "your
    /// snapshot has garbage appended" never reads as "your magic bytes
    /// are wrong".
    TrailingBytes {
        /// Offset of the first unconsumed byte.
        at: usize,
    },
    /// A length field would not fit its on-disk width (`u32`); encoding
    /// refuses rather than silently truncating the count and corrupting
    /// the stream.
    TooLarge,
    /// A replayed batch conflicts with the state it is applied to (a
    /// removal of a dead element, or an insertion of a live id). The
    /// batch is rejected *whole*: working memory is left untouched.
    ReplayConflict(WmeId),
    /// A CRC-framed record failed its checksum with valid data after it
    /// — genuine corruption, not a torn tail (see [`crate::wal`]).
    Corrupt {
        /// Byte offset of the corrupt record.
        at: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "persisted data is truncated"),
            CodecError::BadHeader => write!(f, "bad magic bytes or unsupported version"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte {t:#x}"),
            CodecError::BadString => write!(f, "embedded string is not valid UTF-8"),
            CodecError::TrailingBytes { at } => {
                write!(f, "trailing bytes after a well-formed document (offset {at})")
            }
            CodecError::TooLarge => {
                write!(f, "length field exceeds the on-disk u32 width")
            }
            CodecError::ReplayConflict(id) => {
                write!(
                    f,
                    "redo batch conflicts with the base state at {id}; batch not applied"
                )
            }
            CodecError::Corrupt { at } => {
                write!(f, "corrupt log record at byte offset {at}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------
// Primitive readers/writers
// ---------------------------------------------------------------------

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadString)
    }

    pub(crate) fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    pub(crate) fn pos(&self) -> usize {
        self.pos
    }
}

/// Checked `usize → u32` narrowing for on-disk length fields. The cast
/// this replaces (`as u32`) silently truncated oversized counts into a
/// decodable-but-wrong stream.
fn checked_len(n: usize) -> Result<u32, CodecError> {
    u32::try_from(n).map_err(|_| CodecError::TooLarge)
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), CodecError> {
    put_u32(out, checked_len(s.len())?);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_value(out: &mut Vec<u8>, v: &Value) -> Result<(), CodecError> {
    match v {
        Value::Nil => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(3);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Sym(a) => {
            out.push(4);
            put_str(out, a.as_str())?;
        }
        Value::Str(a) => {
            out.push(5);
            put_str(out, a.as_str())?;
        }
    }
    Ok(())
}

fn read_value(r: &mut Reader<'_>) -> Result<Value, CodecError> {
    Ok(match r.u8()? {
        0 => Value::Nil,
        1 => Value::Bool(r.u8()? != 0),
        2 => Value::Int(r.i64()?),
        3 => Value::Float(f64::from_bits(r.u64()?)),
        4 => Value::Sym(Atom::from(r.string()?)),
        5 => Value::Str(Atom::from(r.string()?)),
        t => return Err(CodecError::BadTag(t)),
    })
}

fn put_wme(out: &mut Vec<u8>, w: &Wme) -> Result<(), CodecError> {
    put_u64(out, w.id.0);
    put_u64(out, w.timestamp);
    put_str(out, w.data.class.as_str())?;
    put_u32(out, checked_len(w.data.attrs.len())?);
    for (attr, value) in &w.data.attrs {
        put_str(out, attr.as_str())?;
        put_value(out, value)?;
    }
    Ok(())
}

fn read_wme(r: &mut Reader<'_>) -> Result<Wme, CodecError> {
    let id = WmeId(r.u64()?);
    let timestamp = r.u64()?;
    let class = r.string()?;
    let n = r.u32()? as usize;
    let mut data = WmeData::new(class);
    for _ in 0..n {
        let attr = r.string()?;
        let value = read_value(r)?;
        data.set(attr, value);
    }
    Ok(Wme {
        id,
        data,
        timestamp,
    })
}

// ---------------------------------------------------------------------
// Change-batch bodies (shared by the redo log and the file WAL)
// ---------------------------------------------------------------------

/// Serialises one committed change batch: `[count: u32][tag, wme]*`.
pub(crate) fn encode_batch_body(
    out: &mut Vec<u8>,
    changes: &[Change],
) -> Result<(), CodecError> {
    put_u32(out, checked_len(changes.len())?);
    for change in changes {
        match change {
            Change::Added(w) => {
                out.push(0);
                put_wme(out, w)?;
            }
            Change::Removed(w) => {
                out.push(1);
                put_wme(out, w)?;
            }
        }
    }
    Ok(())
}

/// Decodes one change batch (the inverse of [`encode_batch_body`]).
pub(crate) fn decode_batch_body(r: &mut Reader<'_>) -> Result<Vec<Change>, CodecError> {
    let n = r.u32()? as usize;
    let mut changes = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let tag = r.u8()?;
        let wme = read_wme(r)?;
        changes.push(match tag {
            0 => Change::Added(wme),
            1 => Change::Removed(wme),
            t => return Err(CodecError::BadTag(t)),
        });
    }
    Ok(changes)
}

/// Replays one committed change batch onto `wm` **all-or-nothing** —
/// the batch is the paper's §4.2 atomic commit unit, and recovery must
/// honour that too. The whole batch is validated against the current
/// state (tracking liveness *through* the batch: a modify is
/// `Removed` + `Added` of the same id) before the first mutation, so an
/// `Err` leaves working memory byte-identical.
pub fn apply_changes_atomic(
    wm: &mut WorkingMemory,
    changes: &[Change],
) -> Result<(), CodecError> {
    // Stage: liveness overlay for ids the batch itself touches.
    let mut overlay: std::collections::HashMap<WmeId, bool> = std::collections::HashMap::new();
    for change in changes {
        match change {
            Change::Removed(w) => {
                let live = overlay
                    .get(&w.id)
                    .copied()
                    .unwrap_or_else(|| wm.contains(w.id));
                if !live {
                    return Err(CodecError::ReplayConflict(w.id));
                }
                overlay.insert(w.id, false);
            }
            Change::Added(w) => {
                let live = overlay
                    .get(&w.id)
                    .copied()
                    .unwrap_or_else(|| wm.contains(w.id));
                if live {
                    return Err(CodecError::ReplayConflict(w.id));
                }
                overlay.insert(w.id, true);
            }
        }
    }
    // Apply: every operation validated above.
    for change in changes {
        match change {
            Change::Added(w) => wm.restore_raw(w.clone()),
            Change::Removed(w) => {
                wm.remove(w.id).expect("validated above");
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

impl WorkingMemory {
    /// Serialises the complete working memory into a self-contained
    /// binary snapshot. Fails with [`CodecError::TooLarge`] if any
    /// length field would overflow its on-disk width (rather than
    /// silently truncating it).
    pub fn encode_snapshot(&self) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::with_capacity(64 + self.len() * 32);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.push(VERSION);
        put_u64(&mut out, self.next_id_raw());
        put_u64(&mut out, self.clock());
        put_u64(&mut out, self.len() as u64);
        for wme in self.iter() {
            put_wme(&mut out, wme)?;
        }
        // Catalogue lifetime statistics (cardinality is recomputed).
        let classes: Vec<&Atom> = self.catalog().classes().collect();
        put_u32(&mut out, checked_len(classes.len())?);
        for class in classes {
            let stats = self
                .catalog()
                .stats(class.as_str())
                .expect("registered class");
            put_str(&mut out, class.as_str())?;
            put_u64(&mut out, stats.inserts);
            put_u64(&mut out, stats.removes);
        }
        Ok(out)
    }

    /// Reconstructs a working memory from a snapshot. The result is
    /// bit-identical in behaviour: same tuples, ids, timestamps, id
    /// allocator position and catalogue statistics.
    pub fn decode_snapshot(buf: &[u8]) -> Result<WorkingMemory, CodecError> {
        let mut r = Reader::new(buf);
        if r.take(4)? != SNAPSHOT_MAGIC || r.u8()? != VERSION {
            return Err(CodecError::BadHeader);
        }
        let next_id = r.u64()?;
        let clock = r.u64()?;
        let count = r.u64()? as usize;
        let mut wm = WorkingMemory::new();
        for _ in 0..count {
            let wme = read_wme(&mut r)?;
            wm.restore_raw(wme);
        }
        let nclasses = r.u32()? as usize;
        for _ in 0..nclasses {
            let class = r.string()?;
            let inserts = r.u64()?;
            let removes = r.u64()?;
            wm.set_class_counters(&Atom::from(class), inserts, removes);
        }
        wm.set_counters_raw(next_id, clock);
        if !r.at_end() {
            return Err(CodecError::TrailingBytes { at: r.pos() });
        }
        Ok(wm)
    }
}

// ---------------------------------------------------------------------
// Redo log
// ---------------------------------------------------------------------

/// An append-only redo log of committed change batches.
///
/// Append the change list returned by every [`WorkingMemory::apply`]
/// (one batch per production commit — the atomic unit of §4.2);
/// [`RedoLog::replay`] re-applies them to a working memory restored from
/// the snapshot taken when the log was started.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RedoLog {
    buf: Vec<u8>,
    batches: u64,
}

impl Default for RedoLog {
    fn default() -> Self {
        RedoLog::new()
    }
}

impl RedoLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(LOG_MAGIC);
        buf.push(VERSION);
        RedoLog { buf, batches: 0 }
    }

    /// Appends one committed batch. Encoding failures
    /// ([`CodecError::TooLarge`]) leave the log untouched — the batch
    /// is staged into a scratch buffer first, so a mid-batch error can
    /// never leave half a record in the stream.
    pub fn append(&mut self, changes: &[Change]) -> Result<(), CodecError> {
        let mut scratch = Vec::with_capacity(changes.len() * 32 + 8);
        encode_batch_body(&mut scratch, changes)?;
        self.buf.extend_from_slice(&scratch);
        self.batches += 1;
        Ok(())
    }

    /// Number of appended batches (committed productions).
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// The serialised log.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Parses a serialised log (validates framing).
    pub fn from_bytes(buf: &[u8]) -> Result<RedoLog, CodecError> {
        let mut r = Reader::new(buf);
        if r.take(4)? != LOG_MAGIC || r.u8()? != VERSION {
            return Err(CodecError::BadHeader);
        }
        let mut batches = 0;
        while !r.at_end() {
            decode_batch_body(&mut r)?;
            batches += 1;
        }
        Ok(RedoLog {
            buf: buf.to_vec(),
            batches,
        })
    }

    /// Replays the log onto `wm` (a working memory restored from the
    /// matching base snapshot). Returns the number of batches applied.
    ///
    /// Each batch applies **atomically**: it is decoded and validated
    /// whole before the first mutation, so a conflicting batch
    /// (`CodecError::ReplayConflict`) leaves `wm` exactly as it was
    /// before that batch — a mid-batch conflict can never leave working
    /// memory half-mutated. Batches before the failing one stay
    /// applied (they committed; the log is a redo prefix).
    pub fn replay(&self, wm: &mut WorkingMemory) -> Result<u64, CodecError> {
        let mut r = Reader::new(&self.buf);
        r.take(4)?;
        r.u8()?;
        let mut applied = 0;
        while !r.at_end() {
            let batch = decode_batch_body(&mut r)?;
            apply_changes_atomic(wm, &batch)?;
            applied += 1;
        }
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeltaSet;

    fn populated() -> WorkingMemory {
        let mut wm = WorkingMemory::new();
        wm.insert(
            WmeData::new("job")
                .with("id", 1i64)
                .with("cost", 2.5f64)
                .with("name", String::from("mill"))
                .with("urgent", true),
        );
        let doomed = wm.insert(WmeData::new("tmp"));
        wm.insert(
            WmeData::new("job")
                .with("id", 2i64)
                .with("note", Value::Nil),
        );
        wm.remove(doomed).unwrap();
        wm
    }

    fn assert_same(a: &WorkingMemory, b: &WorkingMemory) {
        let av: Vec<&Wme> = a.iter().collect();
        let bv: Vec<Wme> = b.iter().cloned().collect();
        assert_eq!(av.len(), bv.len());
        for (x, y) in av.iter().zip(bv.iter()) {
            assert_eq!(**x, *y);
        }
        assert_eq!(a.clock(), b.clock());
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let wm = populated();
        let snap = wm.encode_snapshot().unwrap();
        let back = WorkingMemory::decode_snapshot(&snap).unwrap();
        assert_same(&wm, &back);
        // Catalogue statistics survive too.
        assert_eq!(
            wm.catalog().stats("tmp").map(|s| (s.inserts, s.removes)),
            back.catalog().stats("tmp").map(|s| (s.inserts, s.removes)),
        );
    }

    #[test]
    fn restored_memory_allocates_fresh_ids() {
        let wm = populated();
        let mut back = WorkingMemory::decode_snapshot(&wm.encode_snapshot().unwrap()).unwrap();
        let existing: Vec<WmeId> = back.iter().map(|w| w.id).collect();
        let fresh = back.insert(WmeData::new("job"));
        assert!(
            !existing.contains(&fresh),
            "id allocator position persisted"
        );
        let old_clock = wm.clock();
        assert!(back.get(fresh).unwrap().timestamp > old_clock);
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let wm = populated();
        let mut snap = wm.encode_snapshot().unwrap();
        assert!(matches!(
            WorkingMemory::decode_snapshot(&snap[..10]),
            Err(CodecError::Truncated)
        ));
        snap[0] = b'X';
        assert!(matches!(
            WorkingMemory::decode_snapshot(&snap),
            Err(CodecError::BadHeader)
        ));
        let empty: Vec<u8> = Vec::new();
        assert!(WorkingMemory::decode_snapshot(&empty).is_err());
    }

    #[test]
    fn trailing_garbage_is_reported_as_trailing_bytes() {
        // Misleading-taxonomy regression: appended garbage used to be
        // reported as BadHeader ("bad magic bytes"), hiding what
        // actually went wrong.
        let wm = populated();
        let mut snap = wm.encode_snapshot().unwrap();
        let clean = snap.len();
        snap.extend_from_slice(b"junk");
        match WorkingMemory::decode_snapshot(&snap) {
            Err(CodecError::TrailingBytes { at }) => assert_eq!(at, clean),
            other => panic!("expected TrailingBytes, got {other:?}"),
        }
        // Genuinely bad magic still reads as BadHeader.
        snap[0] = b'X';
        assert!(matches!(
            WorkingMemory::decode_snapshot(&snap),
            Err(CodecError::BadHeader)
        ));
        // The new variant has a Display.
        let msg = CodecError::TrailingBytes { at: clean }.to_string();
        assert!(msg.contains("trailing"), "{msg}");
    }

    #[test]
    fn oversized_length_fields_are_rejected_not_truncated() {
        // `checked_len` is the chokepoint every count/string-length
        // encoding goes through; a usize above u32::MAX must surface
        // TooLarge instead of wrapping (the old `as u32` corruption).
        assert_eq!(checked_len(0), Ok(0));
        assert_eq!(checked_len(u32::MAX as usize), Ok(u32::MAX));
        assert_eq!(
            checked_len(u32::MAX as usize + 1),
            Err(CodecError::TooLarge)
        );
        assert_eq!(checked_len(usize::MAX), Err(CodecError::TooLarge));
        assert!(CodecError::TooLarge.to_string().contains("u32"));
    }

    #[test]
    fn redo_log_recovers_post_snapshot_commits() {
        let mut wm = populated();
        let snap = wm.encode_snapshot().unwrap();
        let mut log = RedoLog::new();

        // Three "commits" after the checkpoint.
        let id = wm.iter().next().unwrap().id;
        let mut d1 = DeltaSet::new();
        d1.modify(id, [(Atom::from("cost"), Value::Float(9.75))]);
        log.append(&wm.apply(&d1).unwrap()).unwrap();

        let mut d2 = DeltaSet::new();
        d2.create(WmeData::new("audit").with("of", 1i64));
        log.append(&wm.apply(&d2).unwrap()).unwrap();

        let victim = wm.class_iter("job").nth(1).unwrap().id;
        let mut d3 = DeltaSet::new();
        d3.remove(victim);
        log.append(&wm.apply(&d3).unwrap()).unwrap();

        assert_eq!(log.batches(), 3);

        // "Crash" and recover: snapshot + log replay.
        let mut recovered = WorkingMemory::decode_snapshot(&snap).unwrap();
        let parsed = RedoLog::from_bytes(log.as_bytes()).unwrap();
        assert_eq!(parsed.replay(&mut recovered).unwrap(), 3);
        assert_same(&wm, &recovered);

        // Recovery leaves the allocator usable.
        let fresh = recovered.insert(WmeData::new("job"));
        assert!(wm.get(fresh).is_none());
    }

    #[test]
    fn redo_log_framing_is_validated() {
        let mut log = RedoLog::new();
        let mut wm = WorkingMemory::new();
        let mut d = DeltaSet::new();
        d.create(WmeData::new("x"));
        log.append(&wm.apply(&d).unwrap()).unwrap();
        let mut bytes = log.as_bytes().to_vec();
        bytes.truncate(bytes.len() - 2);
        assert_eq!(RedoLog::from_bytes(&bytes), Err(CodecError::Truncated));
        assert!(RedoLog::from_bytes(b"nope").is_err());
    }

    #[test]
    fn replay_conflict_is_reported() {
        let mut wm = WorkingMemory::new();
        let id = wm.insert(WmeData::new("x"));
        let mut log = RedoLog::new();
        let removed = wm.remove(id).unwrap();
        log.append(&[Change::Removed(removed)]).unwrap();
        // Replaying onto an EMPTY memory (wrong base) fails cleanly.
        let mut empty = WorkingMemory::new();
        assert_eq!(log.replay(&mut empty), Err(CodecError::ReplayConflict(id)));
    }

    #[test]
    fn conflicting_batch_applies_nothing_at_all() {
        // Replay-atomicity regression: a batch whose *last* operation
        // conflicts must not leave the earlier operations applied. The
        // batch is the §4.2 atomic commit unit — all-or-nothing on
        // recovery too.
        let mut wm = populated();
        let snap_before = wm.encode_snapshot().unwrap();
        let live = wm.iter().next().unwrap().clone();

        // Batch: create a new element (valid), then remove an id that
        // was never in this base (conflict).
        let ghost_id = WmeId(9001);
        let ghost = Wme {
            id: ghost_id,
            timestamp: live.timestamp + 50,
            data: WmeData::new("ghost"),
        };
        let created = Wme {
            id: WmeId(9000),
            timestamp: live.timestamp + 100,
            data: WmeData::new("audit").with("of", 1i64),
        };
        let mut log = RedoLog::new();
        log.append(&[Change::Added(created), Change::Removed(ghost)])
            .unwrap();

        let err = log.replay(&mut wm).unwrap_err();
        assert_eq!(err, CodecError::ReplayConflict(ghost_id));
        // Byte-identical: the valid prefix of the batch was rolled
        // back (never applied), counters and catalogue included.
        assert_eq!(wm.encode_snapshot().unwrap(), snap_before);
    }

    #[test]
    fn batch_internal_liveness_is_tracked_through_the_batch() {
        // A modify is Removed + Added of the same id inside one batch;
        // staging must track liveness *through* the batch or every
        // modify would read as an add-conflict.
        let mut wm = WorkingMemory::new();
        let id = wm.insert(WmeData::new("cell").with("n", 1i64));
        let snap = wm.encode_snapshot().unwrap();
        let mut d = DeltaSet::new();
        d.modify(id, [(Atom::from("n"), Value::Int(2))]);
        let changes = wm.apply(&d).unwrap();

        let mut recovered = WorkingMemory::decode_snapshot(&snap).unwrap();
        apply_changes_atomic(&mut recovered, &changes).unwrap();
        assert_same(&wm, &recovered);

        // And a double-remove inside one batch is a conflict.
        let wme = wm.get(id).unwrap().clone();
        let bad = vec![Change::Removed(wme.clone()), Change::Removed(wme)];
        let before = wm.encode_snapshot().unwrap();
        assert_eq!(
            apply_changes_atomic(&mut wm, &bad),
            Err(CodecError::ReplayConflict(id))
        );
        assert_eq!(wm.encode_snapshot().unwrap(), before);
    }

    #[test]
    fn empty_structures_roundtrip() {
        let wm = WorkingMemory::new();
        let back = WorkingMemory::decode_snapshot(&wm.encode_snapshot().unwrap()).unwrap();
        assert!(back.is_empty());
        let log = RedoLog::new();
        assert_eq!(RedoLog::from_bytes(log.as_bytes()).unwrap().batches(), 0);
    }
}
