//! # `dps-wm` — the working-memory substrate
//!
//! The "database" underneath a database production system, built from
//! scratch for the reproduction of *Parallelism in Database Production
//! Systems* (Srivastava, Hwang & Tan, ICDE 1990).
//!
//! A production system's database is its **working memory** (WM), a
//! collection of **working-memory elements** (WMEs). Following OPS5 and the
//! paper's database setting, a WME here is a typed tuple: it belongs to a
//! *class* (the relation name) and carries a set of *attribute → value*
//! pairs. The paper treats WM as a relational database ("the execution
//! phase will be a full-fledged database query"), so this crate organises
//! WMEs into class-partitioned [`Relation`]s with secondary hash indexes,
//! and supports the catalogue-level view needed for lock escalation
//! (section 4.3 of the paper: a relation-level lock "is equivalent to
//! locking the appropriate tuple in the `SYSTEM-CATALOG` relation").
//!
//! Two properties of the paper's execution model shape the API:
//!
//! 1. **Atomic commit-time updates.** "The WM content is atomically
//!    updated, only when a production reaches its commit point" (section
//!    4.2). RHS effects are therefore buffered in a [`DeltaSet`] and applied
//!    in one call ([`WorkingMemory::apply`]), which returns the precise list
//!    of [`Change`]s for driving an incremental matcher.
//! 2. **Recency timestamps.** Conflict-resolution strategies such as LEX
//!    and MEA order instantiations by WME recency, so every insertion gets
//!    a monotonically increasing [`Timestamp`]; an OPS5-style `modify`
//!    refreshes the timestamp (it is a remove + re-insert).
//!
//! ```
//! use dps_wm::{WorkingMemory, WmeData, Value};
//!
//! let mut wm = WorkingMemory::new();
//! let id = wm.insert(WmeData::new("task").with("status", "pending").with("cost", 3i64));
//! assert_eq!(wm.len(), 1);
//! let wme = wm.get(id).unwrap();
//! assert_eq!(wme.get("status"), Some(&Value::from("pending")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atom;
mod catalog;
mod delta;
mod error;
mod persist;
mod relation;
pub mod rng;
mod store;
mod value;
mod version;
pub mod wal;
mod wme;

pub use atom::Atom;
pub use catalog::{Catalog, ClassStats};
pub use delta::{Change, Delta, DeltaSet};
pub use error::WmError;
pub use persist::{apply_changes_atomic, CodecError, RedoLog};
pub use wal::{recover, DurableWm, KillMode, Recovered, WalError, WalStats, WalWriter};
pub use relation::Relation;
pub use store::WorkingMemory;
pub use value::Value;
pub use version::{Version, VersionStats, VersionedStore};
pub use wme::{Timestamp, Wme, WmeData, WmeId};
