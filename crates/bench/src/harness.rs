//! A minimal, dependency-free benchmark harness with a Criterion-shaped
//! API surface.
//!
//! The workspace builds without registry access, so the benches cannot
//! depend on the `criterion` crate. This module provides the small
//! subset the benches actually use — [`Criterion`], `benchmark_group`,
//! `bench_function`, `bench_with_input`, [`BenchmarkId`], `sample_size`,
//! `finish`, and [`Bencher::iter`] — with wall-clock timing and a
//! plain-text report, so the bench files read identically to their
//! Criterion-based originals.
//!
//! Measurement model: each benchmark runs one untimed warm-up iteration,
//! then `samples` timed iterations (default 20, tunable per group via
//! `sample_size`, globally via the `DPS_BENCH_SAMPLES` env var). Slow
//! benchmarks are capped by a per-benchmark time budget (~2 s) so suites
//! stay fast. The report prints min / median / max per iteration.

use std::fmt;
use std::time::{Duration, Instant};

/// Per-benchmark wall-clock budget: once a benchmark's timed iterations
/// have consumed this much, no further samples are taken.
const TIME_BUDGET: Duration = Duration::from_secs(2);

/// Identifies a benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Criterion-compatible constructor.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `f`: one warm-up call, then up to `samples` measured calls
    /// (subject to the global time budget).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        std::hint::black_box(f()); // warm-up
        let budget_start = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.timings.push(t0.elapsed());
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, timings: &mut [Duration]) {
    if timings.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    timings.sort_unstable();
    let min = timings[0];
    let med = timings[timings.len() / 2];
    let max = timings[timings.len() - 1];
    println!(
        "{name:<44} [{} {} {}]  n={}",
        fmt_duration(min),
        fmt_duration(med),
        fmt_duration(max),
        timings.len()
    );
}

fn default_samples() -> usize {
    std::env::var("DPS_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(20)
}

/// The top-level harness handle (Criterion-shaped).
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: default_samples(),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("── {name} ──");
        BenchmarkGroup {
            name,
            samples: self.samples,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        name: &str,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            timings: Vec::new(),
        };
        f(&mut b);
        report(name, &mut b.timings);
        self
    }
}

/// A group of related benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            timings: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), &mut b.timings);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            timings: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), &mut b.timings);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Shared CLI plumbing for the gate binaries (`scaling`, `matchbench`,
/// `chaos`, `mvcc`, `recovery`): every one of them speaks
/// `[--quick] [--json] [--bench-out PATH]` plus a few `--name VALUE`
/// integer flags. Each bin used to hand-roll this scan; they now all
/// parse through here, so a new flag (or a parsing fix) lands in one
/// place.
#[derive(Clone, Debug)]
pub struct ReportArgs {
    args: Vec<String>,
}

impl ReportArgs {
    /// Captures the process arguments.
    pub fn parse() -> Self {
        ReportArgs {
            args: std::env::args().collect(),
        }
    }

    /// Builds from an explicit argument vector (tests).
    pub fn from_vec(args: Vec<String>) -> Self {
        ReportArgs { args }
    }

    /// `--quick`: the faster, noisier variant of the sweep.
    pub fn quick(&self) -> bool {
        self.has("--quick")
    }

    /// `--json`: emit the machine-readable report on stdout.
    pub fn json(&self) -> bool {
        self.has("--json")
    }

    /// Presence of a bare flag.
    pub fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// Value of an integer `--name VALUE` flag, when present and
    /// parseable.
    pub fn flag_u64(&self, name: &str) -> Option<u64> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .and_then(|v| v.parse().ok())
    }

    /// The `--bench-out PATH` target, if one was given.
    pub fn bench_out(&self) -> Option<String> {
        crate::bench_out_path(&self.args)
    }

    /// Writes `doc` to the `--bench-out` target, if one was given
    /// (fatal on I/O failure — see [`crate::write_bench_out`]).
    pub fn write_bench_out(&self, doc: &dps_obs::json::Json) {
        crate::write_bench_out(&self.args, doc);
    }
}

/// Declares a bench group function, Criterion-style: expands to a
/// `pub fn $name()` that runs each registered benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Declares the bench `main`, Criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($g:path),+ $(,)?) => {
        fn main() {
            $( $g(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion { samples: 5 };
        let mut g = c.benchmark_group("t");
        let mut runs = 0u32;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        // 1 warm-up + 5 samples.
        assert_eq!(runs, 6);
        g.finish();
    }

    #[test]
    fn id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
    }

    #[test]
    fn report_args_parse_the_shared_surface() {
        let a = ReportArgs::from_vec(
            ["bin", "--quick", "--json", "--workers", "12", "--seed", "7", "--bench-out", "x.json"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert!(a.quick() && a.json());
        assert_eq!(a.flag_u64("--workers"), Some(12));
        assert_eq!(a.flag_u64("--seed"), Some(7));
        assert_eq!(a.flag_u64("--missing"), None);
        assert_eq!(a.bench_out().as_deref(), Some("x.json"));
        let empty = ReportArgs::from_vec(vec!["bin".into()]);
        assert!(!empty.quick() && !empty.json() && empty.bench_out().is_none());
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(50)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(500)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(500)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(50)).ends_with(" s"));
    }
}
