//! Shared harness for trace-analysis runs: run a dynamic-engine
//! workload with observability on, feed the merged history through
//! `dps-obs::analysis`, and close the §3 Theorem-2 loop by replaying
//! the recovered commit sequence through the single-thread oracle
//! (`validate_trace`).
//!
//! Used by the `analyze` binary (both protocols, 8 workers, JSON
//! report) and by `scaling --json` (which embeds one analyzed run in
//! its report). The obs crate sits below `dps-core` and therefore can
//! only check the history *structurally*; this module supplies the two
//! pieces it cannot: the execution-graph replay and the cross-check of
//! the recovered rule sequence against the engine's own trace.

use std::time::Instant;

use dps_core::semantics::validate_trace;
use dps_core::{ParallelConfig, ParallelEngine, WorkModel};
use dps_lock::{res_of_key, ConflictPolicy, Protocol};
use dps_obs::analysis::{analyze, RunAnalysis, Verdict};
use dps_obs::json::Json;
use dps_obs::{validate_history, ObsReport};

use crate::workloads;

/// Stable name for a lock protocol (JSON key and CLI label).
pub fn protocol_name(p: Protocol) -> &'static str {
    match p {
        Protocol::TwoPhase => "2pl",
        Protocol::RcRaWa => "rc_ra_wa",
    }
}

/// One fully analyzed dynamic-engine run.
pub struct AnalyzedRun {
    /// Which lock protocol ran.
    pub protocol: Protocol,
    /// Worker count.
    pub workers: usize,
    /// Committed transactions.
    pub commits: usize,
    /// Aborted transactions.
    pub aborts: u64,
    /// Wall-clock seconds.
    pub secs: f64,
    /// The aggregate obs snapshot (histograms, counters).
    pub obs: ObsReport,
    /// The full analysis (graph, contention, critical path, checker —
    /// replay verdict already attached).
    pub analysis: RunAnalysis,
    /// Interned rule-name table for resolving `Fire` rule ids.
    pub rule_names: Vec<String>,
}

/// Runs `shared_resources(tasks, resources)` under `protocol` with
/// observability on and analyzes the resulting history end-to-end.
///
/// The checker verdict inside the returned [`AnalyzedRun`] covers:
/// 1. structural recovery of the commit sequence from `Fire` records;
/// 2. agreement of the recovered rule sequence with the engine's trace;
/// 3. replay of the trace through the single-thread execution graph.
pub fn analyzed_run(
    protocol: Protocol,
    workers: usize,
    tasks: usize,
    resources: usize,
    work_us: u64,
) -> AnalyzedRun {
    let (rules, wm) = workloads::shared_resources(tasks, resources);
    let initial = wm.clone();
    let mut engine = ParallelEngine::new(
        &rules,
        wm,
        ParallelConfig {
            protocol,
            policy: ConflictPolicy::AbortReaders,
            workers,
            work: WorkModel::FixedMicros(work_us),
            observe: true,
            stop: dps_server::shutdown::installed(),
            ..Default::default()
        },
    );
    let t0 = Instant::now();
    let report = engine.run();
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(report.commits, tasks, "{}: lost commits", protocol_name(protocol));

    let rec = engine.observer().expect("observe: true attaches a recorder");
    assert_eq!(rec.dropped(), 0, "ring capacity must suffice for analysis runs");
    let history = rec.history();
    validate_history(&history).expect("merged history well-formed");

    let mut analysis = analyze(&history);

    // Cross-check: the commit sequence recovered *from the event
    // stream alone* must name the same rules, in the same order, as
    // the engine's own trace.
    let rule_names = rec.rule_names();
    let recovered: Vec<&str> = analysis
        .checker
        .rule_sequence()
        .iter()
        .map(|&id| rule_names.get(id as usize).map(String::as_str).unwrap_or("?"))
        .collect();
    let traced = report.trace.names();
    if recovered != traced {
        analysis.checker.structural_errors.push(format!(
            "recovered rule sequence ({} firings) disagrees with the engine trace ({})",
            recovered.len(),
            traced.len()
        ));
    }

    // §3 replay: the firing sequence must be a member of ES_single.
    analysis.set_replay_result(
        validate_trace(&rules, &initial, &report.trace).map_err(|v| v.to_string()),
    );

    AnalyzedRun {
        protocol,
        workers,
        commits: report.commits,
        aborts: report.aborts.total(),
        secs,
        obs: rec.report(),
        analysis,
        rule_names,
    }
}

impl AnalyzedRun {
    /// Per-run JSON object for the `dps-analysis-report-v1` document.
    pub fn to_json(&self, top_contended: usize) -> Json {
        let mut fields = vec![
            ("protocol".into(), Json::str(protocol_name(self.protocol))),
            ("workers".into(), Json::u64(self.workers as u64)),
            ("commits".into(), Json::u64(self.commits as u64)),
            ("aborts".into(), Json::u64(self.aborts)),
            ("secs".into(), Json::num(self.secs)),
        ];
        if let Json::Obj(body) = self.analysis.to_json(top_contended) {
            fields.extend(body);
        }
        Json::Obj(fields)
    }

    /// Human-readable analysis summary (to stderr-style writers).
    pub fn print_human(&self) {
        let c = &self.analysis.critical;
        eprintln!(
            "\n[{} / {} workers] {} commits, {} aborts in {:.1}ms",
            protocol_name(self.protocol),
            self.workers,
            self.commits,
            self.aborts,
            self.secs * 1e3
        );
        eprintln!(
            "  critical path : {:.2}ms over {} txns (wall {:.2}ms)",
            c.critical_path_ns as f64 / 1e6,
            c.critical_path.len(),
            c.wall_ns as f64 / 1e6
        );
        eprintln!(
            "  parallelism   : effective {:.2}x, max-speed-up estimate {:.2}x",
            c.effective_parallelism, c.max_speedup_estimate
        );
        eprintln!(
            "  wasted work f : {:.4} ({:.2}ms of {:.2}ms busy)",
            c.wasted_fraction,
            c.wasted_ns as f64 / 1e6,
            c.total_busy_ns as f64 / 1e6
        );
        if self.analysis.contention.is_empty() {
            eprintln!("  contention    : none observed");
        } else {
            eprintln!(
                "  contention    : {:<18} {:>7} {:>12} {:>9} {:>6} {:>9}",
                "resource", "blocks", "blocked", "blockers", "dooms", "deadlocks"
            );
            for r in self.analysis.contention.iter().take(8) {
                eprintln!(
                    "                  {:<18} {:>7} {:>11.2}ms {:>9} {:>6} {:>9}",
                    format!("{}", res_of_key(r.resource)),
                    r.blocks,
                    r.blocked_ns as f64 / 1e6,
                    r.distinct_blockers,
                    r.dooms_caused,
                    r.deadlock_aborts
                );
            }
        }
        let v = self.analysis.verdict();
        eprintln!(
            "  checker       : {} ({} commits recovered, {} structural errors, replay {})",
            v.name(),
            self.analysis.checker.commits.len(),
            self.analysis.checker.structural_errors.len(),
            match &self.analysis.checker.replay_result {
                None => "not-run",
                Some(Ok(())) => "ok",
                Some(Err(_)) => "VIOLATION",
            }
        );
        for err in &self.analysis.checker.structural_errors {
            eprintln!("    ! {err}");
        }
        if let Some(Err(e)) = &self.analysis.checker.replay_result {
            eprintln!("    ! replay: {e}");
        }
    }
}

/// Assembles the `dps-analysis-report-v1` document from analyzed runs.
pub fn analysis_document(runs: &[AnalyzedRun], top_contended: usize) -> Json {
    let overall = if runs.iter().all(|r| r.analysis.verdict() == Verdict::Consistent) {
        Verdict::Consistent
    } else {
        Verdict::Inconsistent
    };
    Json::Obj(vec![
        ("schema".into(), Json::str("dps-analysis-report-v1")),
        (
            "runs".into(),
            Json::Arr(runs.iter().map(|r| r.to_json(top_contended)).collect()),
        ),
        ("verdict".into(), Json::str(overall.name())),
    ])
}
