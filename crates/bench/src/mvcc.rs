//! MVCC A/B gate: stock lock-based `R_c` versus snapshot condition
//! reads, under the doom-storm chaos plan.
//!
//! The gate's claim is the tentpole property of the MVCC read path:
//! on the workload *built* to maximise reader dooms — relation-level
//! false conflicts under [`FaultPlan::doom_storm`] — the
//! [`ConflictPolicy::MvccSnapshot`] engine
//!
//! * records **zero condition-read aborts** (no dooms, no revalidation
//!   failures: nobody holds a condition lock, so a committing writer
//!   has nobody to kill), and
//! * throws away **strictly less work** than stock `AbortReaders`
//!   (the §5 wasted-work fraction `f`), while
//! * every surviving run still replays through the §3 single-thread
//!   oracle *and* its recorded snapshot/version events reconstruct into
//!   a consistent SI/serializability polygraph
//!   ([`dps_obs::analysis::si_checker`]).
//!
//! The workload is [`workloads::false_conflict_stream`]: guards count
//! down while watching for the *absence* of alarms in their own zone
//! (negated CE → relation-level `Rc`), producers stream alarms into a
//! zone nobody watches. Both sides advance by `modify`, so fresh
//! recency keeps their claims interleaved for the whole run. Under
//! `AbortReaders` every overlapping producer commit dooms the live
//! guards — pure waste, since no guard's condition is actually
//! invalidated; under MVCC the guards take no locks, their commit-time
//! self-validation finds them intact, and they commit untouched.
//! Injection parity holds: the MVCC leg draws the *same* seeded
//! forced-abort decisions on its would-be condition resources (via the
//! lock manager's chaos seam) that the stock leg draws when locking
//! them, so the A/B compares protocols, not injection surface areas.
//!
//! Two **falsifiability probes** keep the SI checker honest: a
//! hand-built write-skew history and a swapped version order must both
//! be *rejected* — a polygraph that accepts anything proves nothing.
//! The `mvcc` binary drives this module and emits the
//! `dps-mvcc-report-v1` document `obs_check` shape-checks in CI.

use std::time::Instant;

use dps_core::semantics::validate_trace;
use dps_core::{AbortStats, ParallelConfig, ParallelEngine, WorkModel};
use dps_lock::{ConflictPolicy, FaultPlan, Protocol};
use dps_obs::analysis::si_checker::{self, SiReport, SiTxn};
use dps_obs::analysis::{analyze, Verdict};
use dps_obs::json::Json;
use dps_obs::{validate_history, TelemetryConfig, TimelineDoc};

use crate::chaos::policy_name;
use crate::workloads;

/// Shape of the A/B measurement (both legs share it).
#[derive(Clone, Debug)]
pub struct MvccSpec {
    /// Seed for the doom-storm fault plan.
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
    /// Guards in [`workloads::false_conflict_stream`].
    pub guards: usize,
    /// Countdown steps per guard.
    pub g_steps: i64,
    /// Alarm producers in the workload.
    pub producers: usize,
    /// Countdown steps (= alarms) per producer.
    pub p_steps: i64,
    /// Simulated RHS cost, microseconds ([`WorkModel::BusyMicros`] —
    /// aborted work burns real processor time, so `f` is honest).
    pub work_us: u64,
}

impl MvccSpec {
    /// Expected commits: every guard and every producer counts all the
    /// way down.
    pub fn expected_commits(&self) -> usize {
        self.guards * self.g_steps as usize + self.producers * self.p_steps as usize
    }
}

/// One leg of the A/B: everything the gate and the report need.
#[derive(Clone, Debug)]
pub struct MvccLeg {
    /// The conflict policy this leg ran under.
    pub policy: ConflictPolicy,
    /// Committed transactions.
    pub commits: usize,
    /// Expected commits (drain target).
    pub expected: usize,
    /// Full abort breakdown.
    pub aborts: AbortStats,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Wasted (aborted) simulated work, milliseconds.
    pub wasted_ms: f64,
    /// The §5 wasted-work fraction `f` = wasted / (useful + wasted),
    /// with useful = commits × RHS cost.
    pub wasted_fraction: f64,
    /// Snapshot pins recorded (zero on the stock leg).
    pub snapshot_pins: u64,
    /// Structural errors from history validation + §3 recovery.
    pub structural_errors: Vec<String>,
    /// §3 replay result label: "consistent" / "violation" / "not-run".
    pub replay: &'static str,
    /// SI polygraph verdict (`None` when the history carries no
    /// snapshot events — the stock leg).
    pub si: Option<Verdict>,
    /// Folded verdict: structural + replay + SI.
    pub verdict: Verdict,
    /// Live-telemetry timeline (both legs carry the sampler, so the
    /// snapshot-pin gauges can be compared policy-to-policy).
    pub timeline: Option<TimelineDoc>,
}

impl MvccLeg {
    /// `true` iff the leg drained and every checker accepted it.
    pub fn passes(&self) -> bool {
        self.commits == self.expected && self.verdict == Verdict::Consistent
    }

    /// JSON block for the report.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("policy".into(), Json::str(policy_name(self.policy))),
            ("commits".into(), Json::u64(self.commits as u64)),
            ("expected_commits".into(), Json::u64(self.expected as u64)),
            (
                "throughput".into(),
                Json::num(self.commits as f64 / self.secs.max(1e-9)),
            ),
            ("secs".into(), Json::num(self.secs)),
            (
                "aborts".into(),
                Json::Obj(vec![
                    ("doomed".into(), Json::u64(self.aborts.doomed)),
                    ("deadlock".into(), Json::u64(self.aborts.deadlock)),
                    ("stale".into(), Json::u64(self.aborts.stale)),
                    ("revalidation".into(), Json::u64(self.aborts.revalidation)),
                    ("eval_error".into(), Json::u64(self.aborts.eval_error)),
                    ("timeout".into(), Json::u64(self.aborts.timeout)),
                    ("injected".into(), Json::u64(self.aborts.injected)),
                    (
                        "snapshot_stale".into(),
                        Json::u64(self.aborts.snapshot_stale),
                    ),
                    ("total".into(), Json::u64(self.aborts.total())),
                    (
                        "reader_aborts".into(),
                        Json::u64(self.aborts.reader_aborts()),
                    ),
                ]),
            ),
            ("wasted_ms".into(), Json::num(self.wasted_ms)),
            ("wasted_fraction".into(), Json::num(self.wasted_fraction)),
            ("snapshot_pins".into(), Json::u64(self.snapshot_pins)),
            (
                "checker".into(),
                Json::Obj(vec![
                    (
                        "structural_errors".into(),
                        Json::u64(self.structural_errors.len() as u64),
                    ),
                    ("replay".into(), Json::str(self.replay)),
                    (
                        "si".into(),
                        match self.si {
                            Some(v) => Json::str(v.name()),
                            None => Json::Null,
                        },
                    ),
                    ("verdict".into(), Json::str(self.verdict.name())),
                ]),
            ),
        ])
    }
}

/// Runs one leg end-to-end: engine → history validation → §3 recovery
/// and replay → SI polygraph. Mirrors [`crate::chaos::chaos_run`] but
/// keeps the full abort breakdown and the SI verdict the gate needs.
pub fn mvcc_leg(spec: &MvccSpec, policy: ConflictPolicy) -> MvccLeg {
    let (rules, wm) =
        workloads::false_conflict_stream(spec.guards, spec.g_steps, spec.producers, spec.p_steps);
    let initial = wm.clone();
    let mut engine = ParallelEngine::new(
        &rules,
        wm,
        ParallelConfig {
            protocol: Protocol::RcRaWa,
            policy,
            workers: spec.workers,
            work: WorkModel::BusyMicros(spec.work_us),
            observe: true,
            fault: Some(FaultPlan::doom_storm(spec.seed)),
            telemetry: Some(TelemetryConfig::default()),
            stop: dps_server::shutdown::installed(),
            ..Default::default()
        },
    );
    let t0 = Instant::now();
    let report = engine.run();
    let secs = t0.elapsed().as_secs_f64();

    let rec = engine.observer().expect("observe: true attaches a recorder");
    let history = rec.history();
    let mut structural_errors: Vec<String> = Vec::new();
    if let Err(e) = validate_history(&history) {
        structural_errors.push(format!("history: {e}"));
    }
    let mut analysis = analyze(&history);
    analysis.set_replay_result(
        validate_trace(&rules, &initial, &report.trace).map_err(|v| v.to_string()),
    );
    structural_errors.extend(analysis.checker.structural_errors.iter().cloned());
    let replay = match &analysis.checker.replay_result {
        None => "not-run",
        Some(Ok(())) => "consistent",
        Some(Err(_)) => "violation",
    };
    let verdict = if structural_errors.is_empty() && analysis.verdict() == Verdict::Consistent {
        Verdict::Consistent
    } else {
        Verdict::Inconsistent
    };

    let wasted_ms = report.wasted_work.as_secs_f64() * 1e3;
    let useful_ms = report.commits as f64 * spec.work_us as f64 / 1e3;
    MvccLeg {
        policy,
        commits: report.commits,
        expected: spec.expected_commits(),
        aborts: report.aborts,
        secs,
        wasted_ms,
        wasted_fraction: wasted_ms / (useful_ms + wasted_ms).max(1e-9),
        snapshot_pins: rec.report().snapshot_pins,
        structural_errors,
        replay,
        si: analysis.si.as_ref().map(|s| s.verdict()),
        verdict,
        timeline: engine.telemetry().map(|t| t.doc()),
    }
}

/// Falsifiability probe 1: a textbook **write skew** — two snapshot
/// transactions read each other's write and commit blind. SI admits
/// it; the serializability polygraph must find the `rw`/`rw` cycle
/// and reject.
pub fn probe_write_skew() -> SiReport {
    let txns = vec![
        SiTxn {
            txn: 1,
            snapshot: 0,
            commit_seq: Some(1),
            fire_seq: Some(0),
            reads: vec![(10, 0), (20, 0)],
            writes: vec![10],
        },
        SiTxn {
            txn: 2,
            snapshot: 0,
            commit_seq: Some(2),
            fire_seq: Some(1),
            reads: vec![(10, 0), (20, 0)],
            writes: vec![20],
        },
    ];
    si_checker::check(&txns)
}

/// Falsifiability probe 2: a **swapped version order** — the version
/// store claims installation sequences that disagree with the commit
/// slots (as if two commits' versions were interchanged). The checker
/// must flag the disagreement.
pub fn probe_version_order() -> SiReport {
    let txns = vec![
        SiTxn {
            txn: 1,
            snapshot: 0,
            commit_seq: Some(2),
            fire_seq: Some(0),
            reads: vec![(10, 0)],
            writes: vec![10],
        },
        SiTxn {
            txn: 2,
            snapshot: 2,
            commit_seq: Some(1),
            fire_seq: Some(1),
            reads: vec![(10, 2)],
            writes: vec![10],
        },
    ];
    si_checker::check(&txns)
}

/// Gate booleans, computed once and shared by the document and the
/// binary's exit code.
#[derive(Clone, Copy, Debug)]
pub struct MvccGates {
    /// MVCC leg recorded zero condition-read aborts.
    pub reader_aborts_zero: bool,
    /// `f_mvcc < f_stock`, strictly.
    pub wasted_work_improved: bool,
    /// Both legs drained and replayed through the §3 oracle.
    pub oracle: bool,
    /// The MVCC leg's history passed the SI polygraph.
    pub si_checker: bool,
    /// Both hand-built inconsistent histories were rejected.
    pub probes_rejected: bool,
}

impl MvccGates {
    /// Evaluates the gates over the two legs and the probes.
    pub fn evaluate(stock: &MvccLeg, mvcc: &MvccLeg, skew: &SiReport, order: &SiReport) -> Self {
        MvccGates {
            reader_aborts_zero: mvcc.aborts.reader_aborts() == 0,
            wasted_work_improved: mvcc.wasted_fraction < stock.wasted_fraction,
            oracle: stock.passes() && mvcc.passes(),
            si_checker: mvcc.si == Some(Verdict::Consistent),
            probes_rejected: skew.verdict() == Verdict::Inconsistent
                && order.verdict() == Verdict::Inconsistent,
        }
    }

    /// All gates green.
    pub fn all(&self) -> bool {
        self.reader_aborts_zero
            && self.wasted_work_improved
            && self.oracle
            && self.si_checker
            && self.probes_rejected
    }
}

/// Assembles the `dps-mvcc-report-v1` document.
pub fn mvcc_document(
    spec: &MvccSpec,
    stock: &MvccLeg,
    mvcc: &MvccLeg,
    skew: &SiReport,
    order: &SiReport,
    gates: &MvccGates,
) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::str("dps-mvcc-report-v1")),
        ("seed".into(), Json::u64(spec.seed)),
        ("plan".into(), Json::str("doom_storm")),
        (
            "workload".into(),
            Json::Obj(vec![
                ("name".into(), Json::str("false_conflict_stream")),
                ("guards".into(), Json::u64(spec.guards as u64)),
                ("guard_steps".into(), Json::u64(spec.g_steps as u64)),
                ("producers".into(), Json::u64(spec.producers as u64)),
                ("producer_steps".into(), Json::u64(spec.p_steps as u64)),
                ("work_us".into(), Json::u64(spec.work_us)),
                ("workers".into(), Json::u64(spec.workers as u64)),
            ]),
        ),
        ("stock".into(), stock.to_json()),
        ("mvcc".into(), mvcc.to_json()),
        // The MVCC leg's sampled series: snapshot-pin occupancy and
        // pin lag are only non-trivial on this leg.
        (
            "timeline".into(),
            mvcc.timeline
                .as_ref()
                .map_or(Json::Null, TimelineDoc::to_json),
        ),
        (
            "probes".into(),
            Json::Obj(vec![
                (
                    "write_skew_rejected".into(),
                    Json::Bool(skew.verdict() == Verdict::Inconsistent),
                ),
                (
                    "version_order_rejected".into(),
                    Json::Bool(order.verdict() == Verdict::Inconsistent),
                ),
            ]),
        ),
        (
            "gates".into(),
            Json::Obj(vec![
                (
                    "reader_aborts_zero".into(),
                    Json::Bool(gates.reader_aborts_zero),
                ),
                (
                    "wasted_work_improved".into(),
                    Json::Bool(gates.wasted_work_improved),
                ),
                ("oracle".into(), Json::Bool(gates.oracle)),
                ("si_checker".into(), Json::Bool(gates.si_checker)),
                ("probes_rejected".into(), Json::Bool(gates.probes_rejected)),
            ]),
        ),
        (
            "verdict".into(),
            Json::str(if gates.all() { "consistent" } else { "inconsistent" }),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_skew_probe_is_rejected() {
        let rep = probe_write_skew();
        assert_eq!(rep.verdict(), Verdict::Inconsistent);
        assert!(rep.cycle.is_some(), "write skew must surface as a cycle");
    }

    #[test]
    fn version_order_probe_is_rejected() {
        let rep = probe_version_order();
        assert_eq!(rep.verdict(), Verdict::Inconsistent);
        assert!(
            !rep.violations.is_empty(),
            "swapped version order must surface as violations"
        );
    }

    #[test]
    fn quick_ab_clears_every_gate() {
        // A scaled-down version of what the `mvcc` binary runs in CI:
        // the false-conflict storm, both legs, all five gates.
        let spec = MvccSpec {
            seed: 0xAB,
            workers: 4,
            guards: 4,
            g_steps: 3,
            producers: 4,
            p_steps: 3,
            work_us: 300,
        };
        let stock = mvcc_leg(&spec, ConflictPolicy::AbortReaders);
        let mv = mvcc_leg(&spec, ConflictPolicy::MvccSnapshot);
        let (skew, order) = (probe_write_skew(), probe_version_order());
        let gates = MvccGates::evaluate(&stock, &mv, &skew, &order);
        assert!(gates.oracle, "both legs drain + replay");
        assert!(
            gates.reader_aborts_zero,
            "MVCC leg doomed {} / revalidated {}",
            mv.aborts.doomed, mv.aborts.revalidation
        );
        assert!(gates.si_checker, "MVCC history passes the polygraph");
        assert!(gates.probes_rejected);
        // Every commit pinned exactly one snapshot at claim validation;
        // aborted attempts pin at most one (injected aborts drawn at
        // the condition phase die before reaching the pin).
        assert!(
            mv.snapshot_pins >= mv.commits as u64
                && mv.snapshot_pins <= mv.commits as u64 + mv.aborts.total(),
            "pins {} outside [commits {}, commits + aborts {}]",
            mv.snapshot_pins,
            mv.commits,
            mv.commits as u64 + mv.aborts.total()
        );
    }
}
