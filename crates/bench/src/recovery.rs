//! Crash-recovery gate: kill-point × policy sweep over the durable
//! engine, every recovered state replayed through the §3 oracle.
//!
//! The gate's claim is the tentpole property of the durability layer:
//! whatever commit the process dies at — record dropped before the
//! fsync, record torn mid-frame on disk, record durable and *then*
//! death — [`dps_wm::recover`] reconstructs **exactly the durable
//! commit prefix** of the run, never a half-applied batch and never a
//! panic. Concretely, for every swept run:
//!
//! * recovery succeeds and reports a durable horizon `w ≤` the
//!   in-memory commit count, positioned consistently with the kill
//!   site (`w == kill` after an after-fsync death, `w < kill`
//!   otherwise, torn tail reported iff the tear was injected);
//! * the recovered working memory is **byte-identical** (via
//!   `encode_snapshot`) to a single-thread replay of the run's first
//!   `w` trace firings, and that truncated trace passes
//!   [`validate_trace`] — the §3 Theorem 2 condition applied to the
//!   durable prefix;
//! * a **resumed** engine over the recovered state drains the rest of
//!   the workload (`w + resumed commits == expected`), its trace
//!   replays from the recovered state, and a *second* recovery of the
//!   resumed incarnation's log lands on the drained fixpoint.
//!
//! A **falsifiability probe** keeps the recovery path honest: flipping
//! one byte inside a mid-log record must make recovery *fail* with a
//! corruption error (a torn-tail rule that silently truncates interior
//! damage would "recover" garbage). And an **overhead leg** prices the
//! whole thing: `match_heavy` with durability on must stay within 25%
//! of durability off — the group-commit promise that one fsync covers
//! many committers.
//!
//! The `recovery` binary drives this module and emits the
//! `dps-recovery-report-v1` document `obs_check` shape-checks in CI.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use dps_core::semantics::validate_trace;
use dps_core::{DurabilityConfig, ParallelConfig, ParallelEngine, Trace};
use dps_lock::{ConflictPolicy, FaultPlan, Protocol, WalKillSite};
use dps_obs::json::Json;
use dps_obs::{TelemetryConfig, TimelineDoc};
use dps_rules::RuleSet;
use dps_wm::{recover, WalStats, WorkingMemory};

use crate::chaos::policy_name;
use crate::workloads;

/// Shape of the sweep.
#[derive(Clone, Debug)]
pub struct RecoverySpec {
    /// Seed for the fault plans (the kill point itself is
    /// deterministic; the seed feeds any companion injection).
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
    /// Scaled-down sweep for `--quick` / tests.
    pub quick: bool,
}

/// One workload leg of the sweep.
struct WorkloadSpec {
    name: &'static str,
    build: fn(bool) -> (RuleSet, WorkingMemory),
    expected: fn(bool) -> usize,
    /// Checkpoint cadence for this leg (0 = never) — one leg runs with
    /// checkpoints so recovery exercises the snapshot + log-suffix
    /// path, one without so it replays the whole log.
    checkpoint_interval: u64,
}

const WORKLOADS: [WorkloadSpec; 2] = [
    WorkloadSpec {
        name: "counters",
        build: |quick| {
            if quick {
                workloads::counters(3, 3)
            } else {
                workloads::counters(4, 3)
            }
        },
        expected: |quick| if quick { 9 } else { 12 },
        checkpoint_interval: 4,
    },
    WorkloadSpec {
        name: "shared_resources",
        build: |quick| {
            if quick {
                workloads::shared_resources(6, 2)
            } else {
                workloads::shared_resources(8, 2)
            }
        },
        expected: |quick| if quick { 6 } else { 8 },
        checkpoint_interval: 0,
    },
];

/// The policies the sweep crosses with every kill site: the stock
/// lock-based read path and the MVCC snapshot read path (their commit
/// critical sections stage WAL records identically; the sweep proves
/// recovery is policy-agnostic).
pub const POLICIES: [ConflictPolicy; 2] =
    [ConflictPolicy::AbortReaders, ConflictPolicy::MvccSnapshot];

/// One kill-point run, everything the gate and the report need.
#[derive(Clone, Debug)]
pub struct RecoveryRun {
    /// Workload name.
    pub workload: &'static str,
    /// Conflict policy of both incarnations.
    pub policy: ConflictPolicy,
    /// Where the process "died".
    pub site: WalKillSite,
    /// The commit sequence number the kill fired at.
    pub kill_commit: u64,
    /// In-memory commits of the first incarnation (it drains: the dead
    /// WAL never blocks the run).
    pub commits: usize,
    /// Expected total commits of the workload.
    pub expected: usize,
    /// Durable horizon recovery landed on.
    pub durable_seq: u64,
    /// Checkpoint the recovery started from (0 = genesis).
    pub checkpoint_seq: u64,
    /// Redo records replayed on top of the checkpoint.
    pub replayed: u64,
    /// Recovery found (and truncated) a torn tail.
    pub torn_tail: bool,
    /// Recovery succeeded.
    pub recovered: bool,
    /// Durable horizon is consistent with the kill site.
    pub site_ok: bool,
    /// Truncated trace passed §3 *and* its serial replay is
    /// byte-identical to the recovered working memory.
    pub prefix_oracle: bool,
    /// Resumed engine drained the remainder, replayed consistently,
    /// and re-recovered to the fixpoint.
    pub resumed: bool,
    /// First failure diagnostic, if any.
    pub error: Option<String>,
}

impl RecoveryRun {
    /// `true` iff every per-run check held.
    pub fn passes(&self) -> bool {
        self.commits == self.expected
            && self.recovered
            && self.site_ok
            && self.prefix_oracle
            && self.resumed
    }

    /// JSON block for the report.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("workload".into(), Json::str(self.workload)),
            ("policy".into(), Json::str(policy_name(self.policy))),
            ("kill_site".into(), Json::str(self.site.name())),
            ("kill_commit".into(), Json::u64(self.kill_commit)),
            ("commits".into(), Json::u64(self.commits as u64)),
            ("expected_commits".into(), Json::u64(self.expected as u64)),
            ("durable_seq".into(), Json::u64(self.durable_seq)),
            ("checkpoint_seq".into(), Json::u64(self.checkpoint_seq)),
            ("replayed".into(), Json::u64(self.replayed)),
            ("torn_tail".into(), Json::Bool(self.torn_tail)),
            ("recovered".into(), Json::Bool(self.recovered)),
            ("site_ok".into(), Json::Bool(self.site_ok)),
            ("prefix_oracle".into(), Json::Bool(self.prefix_oracle)),
            ("resumed".into(), Json::Bool(self.resumed)),
            (
                "verdict".into(),
                Json::str(if self.passes() { "consistent" } else { "inconsistent" }),
            ),
            (
                "error".into(),
                match &self.error {
                    Some(e) => Json::str(e.as_str()),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Serially replays the first `w` firings of `trace` from `initial`,
/// checking §3 selectability of every step (Theorem 2 on the durable
/// prefix), and returns the replayed state.
fn serial_prefix(
    rules: &RuleSet,
    initial: &WorkingMemory,
    trace: &Trace,
    w: usize,
) -> Result<WorkingMemory, String> {
    if w > trace.len() {
        return Err(format!("durable horizon {w} exceeds trace length {}", trace.len()));
    }
    let prefix = Trace { firings: trace.firings[..w].to_vec() };
    validate_trace(rules, initial, &prefix).map_err(|v| format!("prefix oracle: {v}"))?;
    let mut wm = initial.clone();
    for (i, firing) in prefix.firings.iter().enumerate() {
        wm.apply(&firing.delta)
            .map_err(|e| format!("prefix replay at commit #{i}: {e}"))?;
    }
    Ok(wm)
}

fn snapshot_bytes(wm: &WorkingMemory) -> Result<Vec<u8>, String> {
    wm.encode_snapshot().map_err(|e| format!("snapshot encode: {e}"))
}

/// One kill-point run end-to-end: run → die → recover → oracle the
/// prefix → resume → drain → re-recover. `dir` is created fresh and
/// removed on success (left behind for post-mortems on failure).
fn kill_point_run(
    spec: &RecoverySpec,
    workload: &WorkloadSpec,
    policy: ConflictPolicy,
    site: WalKillSite,
    kill_commit: u64,
    dir: PathBuf,
) -> RecoveryRun {
    let _ = fs::remove_dir_all(&dir);
    let (rules, wm) = (workload.build)(spec.quick);
    let expected = (workload.expected)(spec.quick);
    let initial = wm.clone();
    let mut run = RecoveryRun {
        workload: workload.name,
        policy,
        site,
        kill_commit,
        commits: 0,
        expected,
        durable_seq: 0,
        checkpoint_seq: 0,
        replayed: 0,
        torn_tail: false,
        recovered: false,
        site_ok: false,
        prefix_oracle: false,
        resumed: false,
        error: None,
    };
    let fail = |run: &mut RecoveryRun, msg: String| {
        if run.error.is_none() {
            run.error = Some(msg);
        }
    };

    // ---- first incarnation: run into the kill point ----
    let durability = DurabilityConfig {
        dir: dir.clone(),
        checkpoint_interval: workload.checkpoint_interval,
    };
    let mut engine = ParallelEngine::new(
        &rules,
        wm,
        ParallelConfig {
            protocol: Protocol::RcRaWa,
            policy,
            workers: spec.workers,
            durability: Some(durability.clone()),
            stop: dps_server::shutdown::installed(),
            fault: Some(FaultPlan {
                seed: spec.seed,
                wal_kill_commit: kill_commit,
                wal_kill_site: site,
                ..Default::default()
            }),
            ..Default::default()
        },
    );
    let report = engine.run();
    run.commits = report.commits;
    if report.commits != expected {
        fail(&mut run, format!("first run drained {}/{expected}", report.commits));
    }
    if let Err(v) = validate_trace(&rules, &initial, &report.trace) {
        fail(&mut run, format!("first-run oracle: {v}"));
    }

    // ---- recovery ----
    let rec = match recover(&dir) {
        Ok(rec) => rec,
        Err(e) => {
            fail(&mut run, format!("recover: {e}"));
            return run;
        }
    };
    run.recovered = true;
    run.durable_seq = rec.last_seq;
    run.checkpoint_seq = rec.checkpoint_seq;
    run.replayed = rec.replayed;
    run.torn_tail = rec.torn_tail;

    // The durable horizon must sit where the kill semantics put it:
    // after-fsync death keeps exactly the killed commit; both
    // pre-fsync deaths lose it (and the torn variant must be *seen*
    // as torn — the tear lands in the final segment by construction).
    run.site_ok = match site {
        WalKillSite::AfterSync => rec.last_seq == kill_commit,
        WalKillSite::AfterPublish => rec.last_seq < kill_commit,
        WalKillSite::TornTail => rec.last_seq < kill_commit && rec.torn_tail,
    };
    if !run.site_ok {
        fail(
            &mut run,
            format!(
                "site {}: durable_seq {} vs kill {kill_commit}, torn {}",
                site.name(),
                rec.last_seq,
                rec.torn_tail
            ),
        );
    }

    // ---- §3 oracle on the durable prefix + byte-identity ----
    match serial_prefix(&rules, &initial, &report.trace, rec.last_seq as usize) {
        Ok(serial) => match (snapshot_bytes(&serial), snapshot_bytes(&rec.wm)) {
            (Ok(a), Ok(b)) if a == b => run.prefix_oracle = true,
            (Ok(_), Ok(_)) => fail(
                &mut run,
                format!(
                    "recovered state diverges from the serial replay of the first {} firings",
                    rec.last_seq
                ),
            ),
            (Err(e), _) | (_, Err(e)) => fail(&mut run, e),
        },
        Err(e) => fail(&mut run, e),
    }

    // ---- resume: drain the remainder over the recovered state ----
    let mut resumed = ParallelEngine::resume(
        &rules,
        rec.wm.clone(),
        rec.last_seq,
        ParallelConfig {
            protocol: Protocol::RcRaWa,
            policy,
            workers: spec.workers,
            durability: Some(durability),
            stop: dps_server::shutdown::installed(),
            ..Default::default()
        },
    );
    let report2 = resumed.run();
    let total = rec.last_seq + report2.commits as u64;
    if total != expected as u64 {
        fail(
            &mut run,
            format!(
                "resume drained {} on top of {} (total {total} != {expected})",
                report2.commits, rec.last_seq
            ),
        );
    } else if let Err(v) = validate_trace(&rules, &rec.wm, &report2.trace) {
        fail(&mut run, format!("resumed-run oracle: {v}"));
    } else {
        // The second incarnation's log must recover to the fixpoint.
        match recover(&dir) {
            Ok(rec2) => match (snapshot_bytes(&resumed.final_wm()), snapshot_bytes(&rec2.wm)) {
                (Ok(a), Ok(b)) if a == b && rec2.last_seq == expected as u64 => {
                    run.resumed = true;
                }
                (Ok(_), Ok(_)) => fail(
                    &mut run,
                    format!(
                        "re-recovery landed on seq {} / diverging state (want {expected})",
                        rec2.last_seq
                    ),
                ),
                (Err(e), _) | (_, Err(e)) => fail(&mut run, e),
            },
            Err(e) => fail(&mut run, format!("re-recover: {e}")),
        }
    }

    if run.passes() {
        let _ = fs::remove_dir_all(&dir);
    }
    run
}

/// The full sweep: workloads × policies × kill sites × kill commits.
pub fn sweep(spec: &RecoverySpec, scratch: &Path) -> Vec<RecoveryRun> {
    let mut runs = Vec::new();
    let mut idx = 0usize;
    for workload in &WORKLOADS {
        let expected = (workload.expected)(spec.quick) as u64;
        let kills: Vec<u64> = if spec.quick {
            vec![2, expected - 1]
        } else {
            vec![2, expected / 2, expected - 1]
        };
        for policy in POLICIES {
            for site in WalKillSite::ALL {
                for &kill in &kills {
                    let dir = scratch.join(format!("run-{idx}"));
                    idx += 1;
                    runs.push(kill_point_run(spec, workload, policy, site, kill, dir));
                }
            }
        }
    }
    runs
}

/// Falsifiability probe: a clean durable run whose log then suffers a
/// one-byte flip in a **mid-log** record. The torn-tail rule only
/// forgives damage at the very end of the final segment; interior
/// corruption must make recovery fail. Returns `Ok(true)` iff recovery
/// rejected the mangled log.
pub fn probe_corrupt_record(scratch: &Path) -> Result<bool, String> {
    let dir = scratch.join("probe-corrupt");
    let _ = fs::remove_dir_all(&dir);
    let (rules, wm) = workloads::counters(2, 3);
    let mut engine = ParallelEngine::new(
        &rules,
        wm,
        ParallelConfig {
            // No checkpoints: one segment holds the whole log.
            durability: Some(DurabilityConfig { dir: dir.clone(), checkpoint_interval: 0 }),
            ..Default::default()
        },
    );
    let report = engine.run();
    if report.commits != 6 {
        return Err(format!("probe run drained {}/6", report.commits));
    }
    recover(&dir).map_err(|e| format!("probe pre-recovery failed: {e}"))?;
    let segment = fs::read_dir(&dir)
        .map_err(|e| format!("probe readdir: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "log"))
        .ok_or("probe: no wal segment found")?;
    let mut bytes = fs::read(&segment).map_err(|e| format!("probe read: {e}"))?;
    // Segment header is 13 bytes, each frame is [len u32][crc u32]
    // [payload]; flip a byte inside the *first* record's payload —
    // with 6 records behind it, this is interior damage, not a tail.
    let at = 13 + 8 + 2;
    if bytes.len() <= at + 16 {
        return Err(format!("probe: segment unexpectedly small ({} bytes)", bytes.len()));
    }
    bytes[at] ^= 0xFF;
    fs::write(&segment, &bytes).map_err(|e| format!("probe write: {e}"))?;
    let rejected = recover(&dir).is_err();
    let _ = fs::remove_dir_all(&dir);
    Ok(rejected)
}

/// One leg of the fsync-overhead A/B.
#[derive(Clone, Copy, Debug)]
pub struct OverheadLeg {
    /// Commits (both legs must drain the same workload).
    pub commits: usize,
    /// Best-of-reps wall seconds.
    pub secs: f64,
}

impl OverheadLeg {
    /// Commits per second.
    pub fn throughput(&self) -> f64 {
        self.commits as f64 / self.secs.max(1e-9)
    }
}

/// The fsync-overhead measurement: `match_heavy` with durability off
/// vs on, same workers, best of `reps`.
#[derive(Clone, Debug)]
pub struct Overhead {
    /// Durability off.
    pub off: OverheadLeg,
    /// Durability on (WAL + group commit, no kill points).
    pub on: OverheadLeg,
    /// `on.secs / off.secs` — the gate wants ≤ 1.25.
    pub ratio: f64,
    /// WAL counters from the on leg (the group-commit evidence:
    /// `fsyncs` well below `appends`).
    pub wal: WalStats,
    /// Live-telemetry timeline from the last on leg: the `wal.*`
    /// series (pending bytes, fsync count, piggyback ratio) over time.
    pub timeline: Option<TimelineDoc>,
}

/// Runs the overhead A/B. The on-leg's recovered state must also match
/// its in-memory final state (a throughput run is still a correctness
/// run).
pub fn overhead(spec: &RecoverySpec, scratch: &Path) -> Result<Overhead, String> {
    let (groups, pairs, reps) = if spec.quick { (16, 16, 2) } else { (48, 32, 4) };
    let expected = groups * pairs;
    let on_dir = scratch.join("overhead");
    // The durable leg also carries the live-telemetry sampler, so the
    // report's timeline shows the `wal.*` series under load. Telemetry
    // stays off the off leg: the measured ratio is the cost of
    // durability alone (the sampler's own cost has its own gate in the
    // `scaling` binary).
    let run_leg = |durability: Option<DurabilityConfig>| -> Result<
        (f64, Option<WalStats>, Option<TimelineDoc>),
        String,
    > {
        if let Some(d) = &durability {
            let _ = fs::remove_dir_all(&d.dir);
        }
        let (rules, wm) = workloads::match_heavy(groups, pairs);
        let mut engine = ParallelEngine::new(
            &rules,
            wm,
            ParallelConfig {
                workers: spec.workers,
                durability: durability.clone(),
                telemetry: durability.as_ref().map(|_| TelemetryConfig::default()),
                stop: dps_server::shutdown::installed(),
                ..Default::default()
            },
        );
        let t0 = Instant::now();
        let report = engine.run();
        let secs = t0.elapsed().as_secs_f64();
        if report.commits != expected {
            return Err(format!("overhead leg drained {}/{expected}", report.commits));
        }
        if durability.is_some() {
            let rec = recover(&on_dir).map_err(|e| format!("overhead recovery: {e}"))?;
            let (a, b) = (snapshot_bytes(&rec.wm)?, snapshot_bytes(&engine.final_wm())?);
            if a != b || rec.last_seq != expected as u64 {
                return Err("overhead on-leg recovery diverged from the final state".into());
            }
        }
        let timeline = engine.telemetry().map(|t| t.doc());
        Ok((secs, report.wal, timeline))
    };
    // One untimed warm-up run primes the allocator, the Rete network
    // and the scheduler so the cold start lands on neither timed leg;
    // then the legs alternate, so disk and scheduler drift over the
    // measurement window hits both fairly instead of whichever leg
    // happens to run last. Best-of-N per leg.
    run_leg(None)?;
    let durability = DurabilityConfig { dir: on_dir.clone(), checkpoint_interval: 0 };
    let (mut off_best, mut on_best, mut wal, mut timeline) =
        (f64::INFINITY, f64::INFINITY, None, None);
    for _ in 0..reps {
        let (secs, _, _) = run_leg(None)?;
        off_best = off_best.min(secs);
        let (secs, w, t) = run_leg(Some(durability.clone()))?;
        on_best = on_best.min(secs);
        wal = w;
        timeline = t;
    }
    let _ = fs::remove_dir_all(&on_dir);
    let wal = wal.ok_or("overhead on-leg reported no wal stats")?;
    let off = OverheadLeg { commits: expected, secs: off_best };
    let on = OverheadLeg { commits: expected, secs: on_best };
    Ok(Overhead { off, on, ratio: on.secs / off.secs.max(1e-9), wal, timeline })
}

/// Gate booleans, computed once and shared by the document and the
/// binary's exit code.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryGates {
    /// Every kill-point run recovered (no panic, no half-applied state).
    pub all_recovered: bool,
    /// Every durable horizon sat where its kill site put it.
    pub sites_consistent: bool,
    /// Every recovered state equalled the §3-validated serial replay of
    /// its durable commit prefix, byte for byte.
    pub prefix_oracle: bool,
    /// Every resumed engine drained, replayed, and re-recovered.
    pub resume_drains: bool,
    /// The corrupted mid-log record was rejected.
    pub probe_rejected: bool,
    /// `on/off ≤ 1.25` on the `match_heavy` overhead A/B.
    pub overhead_ok: bool,
}

impl RecoveryGates {
    /// Evaluates the gates over the sweep, the probe and the A/B.
    pub fn evaluate(runs: &[RecoveryRun], probe_rejected: bool, overhead: &Overhead) -> Self {
        RecoveryGates {
            all_recovered: runs.iter().all(|r| r.recovered && r.commits == r.expected),
            sites_consistent: runs.iter().all(|r| r.site_ok),
            prefix_oracle: runs.iter().all(|r| r.prefix_oracle),
            resume_drains: runs.iter().all(|r| r.resumed),
            probe_rejected,
            overhead_ok: overhead.ratio <= 1.25,
        }
    }

    /// All gates green.
    pub fn all(&self) -> bool {
        self.all_recovered
            && self.sites_consistent
            && self.prefix_oracle
            && self.resume_drains
            && self.probe_rejected
            && self.overhead_ok
    }
}

/// Assembles the `dps-recovery-report-v1` document.
pub fn recovery_document(
    spec: &RecoverySpec,
    runs: &[RecoveryRun],
    probe_rejected: bool,
    overhead: &Overhead,
    gates: &RecoveryGates,
) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::str("dps-recovery-report-v1")),
        ("seed".into(), Json::u64(spec.seed)),
        ("workers".into(), Json::u64(spec.workers as u64)),
        (
            "runs".into(),
            Json::Arr(runs.iter().map(RecoveryRun::to_json).collect()),
        ),
        (
            "probe".into(),
            Json::Obj(vec![(
                "corrupt_record_rejected".into(),
                Json::Bool(probe_rejected),
            )]),
        ),
        (
            "overhead".into(),
            Json::Obj(vec![
                ("workload".into(), Json::str("match_heavy")),
                ("commits".into(), Json::u64(overhead.on.commits as u64)),
                ("off_secs".into(), Json::num(overhead.off.secs)),
                ("on_secs".into(), Json::num(overhead.on.secs)),
                ("off_throughput".into(), Json::num(overhead.off.throughput())),
                ("on_throughput".into(), Json::num(overhead.on.throughput())),
                ("ratio".into(), Json::num(overhead.ratio)),
                (
                    "wal".into(),
                    Json::Obj(vec![
                        ("appends".into(), Json::u64(overhead.wal.appends)),
                        ("fsyncs".into(), Json::u64(overhead.wal.fsyncs)),
                        ("synced_records".into(), Json::u64(overhead.wal.synced_records)),
                        ("piggybacked".into(), Json::u64(overhead.wal.piggybacked)),
                        ("checkpoints".into(), Json::u64(overhead.wal.checkpoints)),
                        ("bytes_written".into(), Json::u64(overhead.wal.bytes_written)),
                    ]),
                ),
            ]),
        ),
        // The durable overhead leg's sampled series: WAL pending
        // bytes, fsync counts and the piggyback ratio over time.
        (
            "timeline".into(),
            overhead
                .timeline
                .as_ref()
                .map_or(Json::Null, TimelineDoc::to_json),
        ),
        (
            "gates".into(),
            Json::Obj(vec![
                ("all_recovered".into(), Json::Bool(gates.all_recovered)),
                ("sites_consistent".into(), Json::Bool(gates.sites_consistent)),
                ("prefix_oracle".into(), Json::Bool(gates.prefix_oracle)),
                ("resume_drains".into(), Json::Bool(gates.resume_drains)),
                ("probe_rejected".into(), Json::Bool(gates.probe_rejected)),
                ("overhead_ok".into(), Json::Bool(gates.overhead_ok)),
            ]),
        ),
        (
            "verdict".into(),
            Json::str(if gates.all() { "consistent" } else { "inconsistent" }),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dps-recovery-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn quick_sweep_clears_every_per_run_check() {
        let spec = RecoverySpec { seed: 0x7E57, workers: 4, quick: true };
        let dir = scratch("sweep");
        let runs = sweep(&spec, &dir);
        assert_eq!(runs.len(), 2 * 2 * 3 * 2, "workloads x policies x sites x kills");
        for r in &runs {
            assert!(
                r.passes(),
                "{} / {} / {} @ {}: {:?}",
                r.workload,
                policy_name(r.policy),
                r.site.name(),
                r.kill_commit,
                r.error
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_mid_log_record_is_rejected() {
        let dir = scratch("probe");
        assert_eq!(probe_corrupt_record(&dir), Ok(true));
        let _ = fs::remove_dir_all(&dir);
    }
}
