//! Crash-recovery gate: kill-point × policy sweep over the durable
//! engine (see [`dps_bench::recovery`]). Emits the
//! `dps-recovery-report-v1` document and exits 0 iff every gate holds:
//!
//! * every kill-point run (dropped / torn / post-fsync death) recovers
//!   to the durable commit prefix — §3-oracle-validated and
//!   byte-identical to a serial replay of that prefix;
//! * every durable horizon sits where its kill site put it (torn
//!   tails are seen and truncated, post-fsync commits survive);
//! * every resumed engine drains the remainder and re-recovers to the
//!   fixpoint;
//! * the falsifiability probe — one flipped byte in a mid-log record —
//!   makes recovery *fail* (the torn-tail rule forgives only the tail);
//! * durability-on throughput stays within 25% of durability-off on
//!   `match_heavy` (the group-commit promise).
//!
//! Usage: `recovery [--quick] [--json] [--workers N] [--seed S]
//! [--bench-out PATH]`. With `--json` the report goes to stdout (human
//! summary to stderr); `--bench-out` additionally snapshots it to a
//! file. `obs_check` shape-checks the document in CI.

use std::process::ExitCode;

use dps_bench::harness::ReportArgs;
use dps_bench::recovery::{
    overhead, probe_corrupt_record, recovery_document, sweep, RecoveryGates, RecoverySpec,
};

fn main() -> ExitCode {
    dps_server::shutdown::install();
    let args = ReportArgs::parse();
    let (quick, json) = (args.quick(), args.json());
    let workers = args.flag_u64("--workers").unwrap_or(8) as usize;
    let seed = args.flag_u64("--seed").unwrap_or(0xD0_2026);
    let spec = RecoverySpec { seed, workers, quick };
    let scratch = std::env::temp_dir().join(format!("dps-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    if let Err(e) = std::fs::create_dir_all(&scratch) {
        eprintln!("recovery: cannot create scratch dir {}: {e}", scratch.display());
        return ExitCode::FAILURE;
    }

    eprintln!(
        "recovery gate: kill-point sweep, seed {seed:#x}, {workers} workers{}",
        if quick { " (quick)" } else { "" }
    );
    let runs = sweep(&spec, &scratch);
    let mut failed = 0usize;
    for r in &runs {
        let ok = r.passes();
        if !ok {
            failed += 1;
        }
        eprintln!(
            "  [{}] {:>16} / {:<13} kill {:>2} @ {:<13} -> durable {:>2} (ckpt {}, +{} redo{}){}",
            if ok { "ok" } else { "XX" },
            r.workload,
            dps_bench::chaos::policy_name(r.policy),
            r.kill_commit,
            r.site.name(),
            r.durable_seq,
            r.checkpoint_seq,
            r.replayed,
            if r.torn_tail { ", torn tail cut" } else { "" },
            match &r.error {
                Some(e) => format!(" — {e}"),
                None => String::new(),
            },
        );
    }

    let probe_rejected = match probe_corrupt_record(&scratch) {
        Ok(rejected) => {
            eprintln!(
                "  probe: corrupt mid-log record {}",
                if rejected { "rejected" } else { "ACCEPTED (rubber stamp!)" }
            );
            rejected
        }
        Err(e) => {
            eprintln!("  probe: setup failed — {e}");
            false
        }
    };

    let overhead = match overhead(&spec, &scratch) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("recovery: overhead A/B failed — {e}");
            let _ = std::fs::remove_dir_all(&scratch);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "  overhead: match_heavy off {:.1}ms ({:.0}/s) vs on {:.1}ms ({:.0}/s) — ratio {:.3} \
         ({} appends / {} fsyncs, {} piggybacked)",
        overhead.off.secs * 1e3,
        overhead.off.throughput(),
        overhead.on.secs * 1e3,
        overhead.on.throughput(),
        overhead.ratio,
        overhead.wal.appends,
        overhead.wal.fsyncs,
        overhead.wal.piggybacked,
    );

    let gates = RecoveryGates::evaluate(&runs, probe_rejected, &overhead);
    let doc = recovery_document(&spec, &runs, probe_rejected, &overhead, &gates);
    if json {
        println!("{}", doc.to_string_pretty());
    }
    args.write_bench_out(&doc);
    let _ = std::fs::remove_dir_all(&scratch);

    eprintln!(
        "\nrecovery gates: recovered {} | sites {} | prefix-oracle {} | resume {} | \
         probe {} | overhead {} ({:.3} <= 1.25)",
        gates.all_recovered,
        gates.sites_consistent,
        gates.prefix_oracle,
        gates.resume_drains,
        gates.probe_rejected,
        gates.overhead_ok,
        overhead.ratio,
    );
    if gates.all() && failed == 0 {
        eprintln!("recovery: GATE PASSED");
        ExitCode::SUCCESS
    } else {
        eprintln!("recovery: GATE FAILED ({failed} failing run(s))");
        ExitCode::FAILURE
    }
}
