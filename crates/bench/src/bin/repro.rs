//! `repro` — regenerates every table and figure of *Parallelism in
//! Database Production Systems* (ICDE 1990), plus the extension
//! experiments indexed in `EXPERIMENTS.md`.
//!
//! Usage:
//! ```text
//! repro                # run everything
//! repro --exp e5.1     # one experiment (e3.2, e4.1..e4.4, e5.1..e5.4, x1..x9)
//! ```

use std::collections::HashMap;

use dps_bench::workloads;
use dps_core::abstract_model::{fmt_seq, paper33_example};
use dps_core::semantics::{validate_trace, ExecutionGraph};
use dps_core::{
    ParallelConfig, ParallelEngine, ParallelReport, SelectionMode, StaticConfig,
    StaticParallelEngine, WorkModel,
};
use dps_lock::{
    compatibility_table, ConflictPolicy, LockError, LockEvent, LockManager, LockMode, Protocol,
    ResourceId,
};
use dps_obs::analysis::analyze;
use dps_obs::validate_history;
use dps_rules::analysis::Granularity;
use dps_rules::RuleSet;
use dps_sim::scenario::all_figures;
use dps_sim::{simulate_multi, sweep, Outcome};
use dps_wm::WorkingMemory;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pick = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_lowercase());
    let want = |id: &str| pick.as_deref().is_none_or(|p| p == id);

    println!("Reproduction of: Srivastava, Hwang & Tan,");
    println!("\"Parallelism in Database Production Systems\", ICDE 1990, pp. 121-128");
    println!("(paper value in parentheses where the paper prints one)\n");

    if want("e3.2") {
        e3_2();
    }
    if want("e4.1") {
        e4_1();
    }
    if want("e4.2") {
        e4_2();
    }
    if want("e4.3") {
        e4_3();
    }
    if want("e4.4") {
        e4_4();
    }
    if pick.as_deref().is_none_or(|p| p.starts_with("e5")) {
        e5(pick.as_deref());
    }
    if want("x1") {
        x1();
    }
    if want("x2") {
        x2();
    }
    if want("x3") {
        x3();
    }
    if want("x5") {
        x5();
    }
    if want("x7") {
        x7();
    }
    if want("x9") {
        x9();
    }
}

fn header(title: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// Feeds an instrumented run's merged event history through the
/// trace-analysis layer and returns a one-cell digest: wasted-work
/// fraction `f`, effective parallelism, and the semantic-consistency
/// checker's verdict (§3 replay through `validate_trace` included).
/// Used by the dynamic-engine experiments (X2/X3/X7), which all run
/// with `observe: true`.
fn obs_digest(
    engine: &ParallelEngine,
    rules: &RuleSet,
    initial: &WorkingMemory,
    report: &ParallelReport,
) -> String {
    let rec = engine.observer().expect("observe: true attaches a recorder");
    let history = rec.history();
    validate_history(&history).expect("merged history well-formed");
    let mut analysis = analyze(&history);
    analysis
        .set_replay_result(validate_trace(rules, initial, &report.trace).map_err(|v| v.to_string()));
    let c = &analysis.critical;
    format!(
        "f {:.2}, eff {:.1}x, {}",
        c.wasted_fraction,
        c.effective_parallelism,
        analysis.verdict().name()
    )
}

/// E3.2 — §3.3 example + Figure 3.2: the execution graph and ES_single.
fn e3_2() {
    header("E3.2  Figure 3.2 / §3.3 — execution graph and ES_single");
    let sys = paper33_example();
    let g = ExecutionGraph::build(&sys, 10_000);
    println!("initial conflict set: {{p1, p2, p3, p5}}  (paper: {{P1,P2,P3,P5}})");
    println!("\nexecution graph ({} states):", g.state_count());
    println!("{}", g.render());
    let seqs = g.maximal_sequences(100, 100);
    println!(
        "\nES_single maximal sequences ({}; paper lists 9):",
        seqs.len()
    );
    for s in &seqs {
        println!("  {}", fmt_seq(s));
    }
    println!();
}

/// E4.1 — Table 4.1 + Figure 4.1 (standard 2PL acquisition trace).
fn e4_1() {
    header("E4.1  Table 4.1 — lock compatibility matrix; Figure 4.1 — 2PL protocol");
    println!("{}", compatibility_table());
    println!("Figure 4.1 protocol trace (S for LHS reads, X for RHS writes):");
    let lm = LockManager::new(ConflictPolicy::AbortReaders);
    lm.set_recording(true);
    let p = lm.begin();
    lm.lock(p, ResourceId::Tuple(1), LockMode::S).unwrap(); // condition read
    lm.lock(p, ResourceId::Tuple(2), LockMode::S).unwrap(); // condition read
    lm.lock(p, ResourceId::Tuple(2), LockMode::X).unwrap(); // RHS write (upgrade)
    lm.commit(p).unwrap();
    print_events(&lm.take_events());
    println!();
}

/// E4.2 — Figure 4.2: Rc for condition evaluation, Ra/Wa for the RHS.
fn e4_2() {
    header("E4.2  Figure 4.2 — improved acquisition with Rc locks");
    let lm = LockManager::new(ConflictPolicy::AbortReaders);
    lm.set_recording(true);
    let p = lm.begin();
    lm.lock(p, ResourceId::Tuple(1), LockMode::Rc).unwrap();
    lm.lock(p, ResourceId::Tuple(2), LockMode::Rc).unwrap();
    lm.lock(p, ResourceId::Tuple(1), LockMode::Ra).unwrap();
    lm.lock(p, ResourceId::Tuple(2), LockMode::Wa).unwrap();
    lm.commit(p).unwrap();
    print_events(&lm.take_events());
    println!();
}

/// E4.3 — Figures 4.3(a)/(b): the two commit orders of an Rc–Wa conflict.
fn e4_3() {
    header("E4.3  Figure 4.3 — Rc–Wa conflict, both commit orders");
    // (a) reader commits first: both commit, serial order Pj Pi.
    let lm = LockManager::new(ConflictPolicy::AbortReaders);
    let pj = lm.begin();
    let pi = lm.begin();
    lm.lock(pj, ResourceId::Tuple(1), LockMode::Rc).unwrap();
    lm.lock(pi, ResourceId::Tuple(1), LockMode::Wa).unwrap();
    let oj = lm.commit(pj).unwrap();
    let oi = lm.commit(pi).unwrap();
    println!(
        "(a) Pj(Rc) commits first: both commit, {} doomed -> serial order Pj Pi",
        oi.doomed_readers.len() + oj.doomed_readers.len()
    );
    // (b) writer commits first: reader forced to abort.
    let lm = LockManager::new(ConflictPolicy::AbortReaders);
    let pj = lm.begin();
    let pi = lm.begin();
    lm.lock(pj, ResourceId::Tuple(1), LockMode::Rc).unwrap();
    lm.lock(pi, ResourceId::Tuple(1), LockMode::Wa).unwrap();
    let oi = lm.commit(pi).unwrap();
    let rj = lm.commit(pj);
    println!(
        "(b) Pi(Wa) commits first: Pi dooms {} reader(s); Pj -> {}",
        oi.doomed_readers.len(),
        match rj {
            Err(LockError::DoomedByWriter { .. }) => "forced abort (as the paper requires)",
            other => unreachable!("unexpected: {other:?}"),
        }
    );
    println!();
}

/// E4.4 — Figure 4.4: circular Rc–Wa dependency → exactly one commits.
fn e4_4() {
    header("E4.4  Figure 4.4 — circular conflict dependency");
    let lm = LockManager::new(ConflictPolicy::AbortReaders);
    let pi = lm.begin();
    let pj = lm.begin();
    let (q, r) = (ResourceId::Tuple(1), ResourceId::Tuple(2));
    lm.lock(pi, q, LockMode::Rc).unwrap();
    lm.lock(pj, r, LockMode::Rc).unwrap();
    lm.lock(pi, r, LockMode::Wa).unwrap();
    lm.lock(pj, q, LockMode::Wa).unwrap();
    println!("Pi holds Rc(q)+Wa(r); Pj holds Rc(r)+Wa(q)  — all granted (Rc || Wa)");
    let first = lm.commit(pi).unwrap();
    let second = lm.commit(pj);
    println!(
        "Pi commits -> dooms {:?}; Pj commit -> {}",
        first.doomed_readers,
        if second.is_err() {
            "aborted"
        } else {
            "committed (BUG)"
        }
    );
    println!("exactly one of the two commits, as required\n");
}

/// E5.1–E5.4 — the §5 figures via the discrete-event simulator.
fn e5(pick: Option<&str>) {
    header("E5.1-E5.4  Figures 5.1-5.4 — single vs multiple thread execution");
    for fig in all_figures() {
        let id = fig.id.to_lowercase().replace("figure ", "e");
        if pick.is_some_and(|p| p != id) {
            continue;
        }
        println!("{}", fig.row());
        let sys = match fig.id {
            "Figure 5.1" | "Figure 5.4" => dps_core::abstract_model::paper51_base(),
            "Figure 5.2" => dps_core::abstract_model::paper52_conflict(),
            _ => dps_core::abstract_model::paper51_base().with_time(1, 4),
        };
        let m = simulate_multi(&sys, fig.processors);
        for proc in 0..fig.processors {
            let bars: Vec<String> = m
                .segments
                .iter()
                .filter(|s| s.processor == proc)
                .map(|s| {
                    format!(
                        "{} [{}..{}{}]",
                        s.p,
                        s.start,
                        s.end,
                        if s.outcome == Outcome::Aborted {
                            " ABORTED"
                        } else {
                            ""
                        }
                    )
                })
                .collect();
            println!(
                "    proc {proc}: {}",
                if bars.is_empty() {
                    "idle".to_string()
                } else {
                    bars.join("  ")
                }
            );
        }
        println!(
            "    status: {}",
            if fig.matches_paper() {
                "MATCHES PAPER"
            } else {
                "DIVERGES"
            }
        );
        println!();
    }
}

/// X1 — extension sweeps over the three §5 factors.
fn x1() {
    header("X1  Speed-up sweeps (randomized abstract systems, 16 productions, mean of 20 seeds)");
    println!("degree of conflict (Np = 8):");
    println!("  density | speedup | wasted fraction");
    for p in sweep::conflict_sweep(&[0.0, 0.05, 0.1, 0.2, 0.4, 0.8], 8, 20) {
        println!(
            "  {:>7.2} | {:>7.2} | {:.3}",
            p.x, p.speedup, p.wasted_fraction
        );
    }
    println!("\nnumber of processors (density = 0.05):");
    println!("  Np | speedup");
    for p in sweep::processor_sweep(&[1, 2, 4, 8, 16], 0.05, 20) {
        println!("  {:>2} | {:>7.2}", p.x as usize, p.speedup);
    }
    println!("\nexecution-time spread (times 1..=max, Np = 8):");
    println!("  max T | speedup");
    for p in sweep::time_skew_sweep(&[1, 4, 16, 64], 8, 20) {
        println!("  {:>5} | {:>7.2}", p.x as u64, p.speedup);
    }
    println!();
}

/// X2 — measured wall-clock: Rc/Ra/Wa vs 2PL with long RHSs.
fn x2() {
    header("X2  Measured: Rc/Ra/Wa vs 2PL, long RHS, varying contention (wall-clock)");
    println!("workload: 24 tasks charge K shared tallies; RHS busy-works 2 ms; 8 workers\n");
    println!("  tallies | protocol |  wall (ms) | commits | aborts | trace analysis");
    for &resources in &[24usize, 8, 2, 1] {
        for (name, protocol) in [
            ("2PL    ", Protocol::TwoPhase),
            ("RcRaWa ", Protocol::RcRaWa),
        ] {
            let (rules, wm) = workloads::shared_resources(24, resources);
            let initial = wm.clone();
            let mut engine = ParallelEngine::new(
                &rules,
                wm,
                ParallelConfig {
                    protocol,
                    policy: ConflictPolicy::AbortReaders,
                    workers: 8,
                    work: WorkModel::FixedMicros(2000),
                    max_commits: 10_000,
                    rc_escalation: None,
                    lock_shards: dps_lock::DEFAULT_SHARDS,
                    observe: true,
                    ..Default::default()
                },
            );
            let report = engine.run();
            validate_trace(&rules, &initial, &report.trace).expect("semantic consistency");
            println!(
                "  {:>7} | {name} | {:>10.1} | {:>7} | {:>6} | {}",
                resources,
                report.wall.as_secs_f64() * 1e3,
                report.commits,
                report.aborts.total(),
                obs_digest(&engine, &rules, &initial, &report)
            );
        }
    }
    println!("\n(the paper's claim: Rc lets new condition evaluations overlap a long RHS,");
    println!(" so the improved scheme's advantage grows with RHS length and contention)\n");
}

/// X3 — abort-on-commit vs revalidation on relation-level false conflicts.
fn x3() {
    header("X3  Conflict-policy ablation: AbortReaders vs Revalidate (false conflicts)");
    println!("workload: 12 guards with negated CEs (relation-level Rc), 12 producers\n");
    println!("  policy       | commits | doomed | revalidation aborts | stale | trace analysis");
    for (name, policy) in [
        ("AbortReaders", ConflictPolicy::AbortReaders),
        ("Revalidate  ", ConflictPolicy::Revalidate),
    ] {
        let (rules, wm) = workloads::false_conflicts(12, 12);
        let initial = wm.clone();
        let mut engine = ParallelEngine::new(
            &rules,
            wm,
            ParallelConfig {
                protocol: Protocol::RcRaWa,
                policy,
                workers: 8,
                work: WorkModel::FixedMicros(500),
                max_commits: 10_000,
                rc_escalation: None,
                lock_shards: dps_lock::DEFAULT_SHARDS,
                observe: true,
                ..Default::default()
            },
        );
        let report = engine.run();
        validate_trace(&rules, &initial, &report.trace).expect("semantic consistency");
        println!(
            "  {name} | {:>7} | {:>6} | {:>19} | {:>5} | {}",
            report.commits,
            report.aborts.doomed,
            report.aborts.revalidation,
            report.aborts.stale,
            obs_digest(&engine, &rules, &initial, &report)
        );
    }
    println!("\n(producers never touch the guards' WMEs, yet AbortReaders kills guards on");
    println!(" any escalated-relation overlap; Revalidate keeps the survivors — the paper's");
    println!(" \"reevaluate Pj's condition\" alternative)\n");
}

/// X5 — static (Theorem 1) vs dynamic-footprint selection.
fn x5() {
    header("X5  Static vs dynamic parallel engines (manufacturing pipeline, 12 jobs x 6 stages)");
    println!("  mode                     | cycles | commits | analytic speedup");
    let mut cost = HashMap::new();
    cost.insert(dps_wm::Atom::from("advance"), 3u64);
    for (name, mode) in [
        (
            "static rules (class)    ",
            SelectionMode::StaticRules(Granularity::Class),
        ),
        (
            "static rules (class+att)",
            SelectionMode::StaticRules(Granularity::ClassAttribute),
        ),
        ("dynamic footprints      ", SelectionMode::DynamicFootprints),
    ] {
        let (rules, wm) = workloads::manufacturing(12, 6);
        let initial = wm.clone();
        let mut engine = StaticParallelEngine::new(
            &rules,
            wm,
            StaticConfig {
                mode,
                max_width: 16,
                rule_cost: cost.clone(),
                ..Default::default()
            },
        );
        let report = engine.run();
        validate_trace(&rules, &initial, &report.trace).expect("semantic consistency");
        println!(
            "  {name} | {:>6} | {:>7} | {:>6.2}",
            report.cycles,
            report.commits,
            report.speedup()
        );
    }
    println!("\n(rule-level static analysis self-serialises the advance rule — the paper's");
    println!(" conservatism argument; run-time footprints recover the per-job parallelism)\n");
}

/// X7 — Rc lock-escalation ablation (§4.3's closing paragraph).
fn x7() {
    header("X7  Rc escalation ablation: tuple locks vs relation locks (Sec 4.3)");
    println!("workload: 24 tasks, 8 tallies, 0.5 ms RHS, 8 workers\n");
    println!("  escalation | policy       |  wall (ms) | aborts (doomed/reval/stale) | trace analysis");
    for (esc_name, esc) in [("never ", None), ("always", Some(0usize))] {
        for (pol_name, policy) in [
            ("AbortReaders", ConflictPolicy::AbortReaders),
            ("Revalidate  ", ConflictPolicy::Revalidate),
        ] {
            let (rules, wm) = workloads::shared_resources(24, 8);
            let initial = wm.clone();
            let mut engine = ParallelEngine::new(
                &rules,
                wm,
                ParallelConfig {
                    protocol: Protocol::RcRaWa,
                    policy,
                    workers: 8,
                    work: WorkModel::FixedMicros(500),
                    max_commits: 10_000,
                    rc_escalation: esc,
                    lock_shards: dps_lock::DEFAULT_SHARDS,
                    observe: true,
                    ..Default::default()
                },
            );
            let report = engine.run();
            validate_trace(&rules, &initial, &report.trace).expect("semantic consistency");
            println!(
                "  {esc_name}     | {pol_name} | {:>10.1} | {:>3} ({}/{}/{}) | {}",
                report.wall.as_secs_f64() * 1e3,
                report.aborts.total(),
                report.aborts.doomed,
                report.aborts.revalidation,
                report.aborts.stale,
                obs_digest(&engine, &rules, &initial, &report)
            );
        }
    }
    println!("\n(escalating every Rc to its relation cuts lock traffic but manufactures");
    println!(" false conflicts; Revalidate absorbs them, AbortReaders pays in retries)\n");
}

/// X9 — Example 5.1: multiple threads on a uniprocessor never beat the
/// single thread (time slicing only adds wasted partial work).
fn x9() {
    use dps_sim::{simulate_multi_uniprocessor, single_thread_time};
    header("X9  Example 5.1 — uniprocessor multiple-thread overhead");
    println!("  system      | quantum | T_single(sigma) | T_multi,uni | wasted");
    for (name, sys) in [
        ("base (5.1) ", dps_core::abstract_model::paper51_base()),
        ("conflict 5.2", dps_core::abstract_model::paper52_conflict()),
    ] {
        for quantum in [1u64, 2, 100] {
            let uni = simulate_multi_uniprocessor(&sys, quantum);
            let t_single = single_thread_time(&sys, &uni.commit_seq);
            println!(
                "  {name} | {quantum:>7} | {:>15} | {:>11} | {:>6}",
                t_single, uni.makespan, uni.wasted
            );
            assert!(uni.makespan >= t_single);
        }
    }
    println!("\n(T_multi,uni = T_single + wasted, so the single thread always wins on one");
    println!(" processor — the paper's justification for requiring a multiprocessor)\n");
}

fn print_events(events: &[LockEvent]) {
    for e in events {
        match e {
            LockEvent::Begin(t) => println!("  {t}: begin"),
            LockEvent::Grant(t, r, m) => println!("  {t}: granted {m} on {r}"),
            LockEvent::Block(t, r, m) => println!("  {t}: BLOCKED requesting {m} on {r}"),
            LockEvent::Doom(t, by) => match by {
                Some(w) => println!("  {t}: doomed by committing writer {w}"),
                None => println!("  {t}: doomed (deadlock victim)"),
            },
            LockEvent::Commit(t) => println!("  {t}: commit (all locks released)"),
            LockEvent::Abort(t) => println!("  {t}: abort"),
        }
    }
}
