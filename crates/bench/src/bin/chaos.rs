//! Chaos gate: sweep seeded fault plans × conflict policies × worker
//! counts through the dynamic engine, and require every surviving run
//! to (a) drain its whole workload and (b) replay consistently through
//! the §3 single-thread oracle. Also runs the falsifiability probe
//! (corrupted commit sequence → the checker **must** reject) and the
//! governor A/B on the doom-storm plan (experiment XS.3).
//!
//! The sweep covers all three conflict policies — `AbortReaders`,
//! `Revalidate`, and `MvccSnapshot` — so the MVCC read path survives
//! the same storms the lock-based modes do.
//!
//! Usage: `chaos [--quick] [--json] [--workers N] [--seed S]
//! [--bench-out PATH]`. With `--json` the `dps-chaos-report-v1`
//! document goes to stdout (human summary to stderr); `--bench-out`
//! additionally snapshots it to a file. `obs_check` shape-checks it in
//! CI. Exit 0 iff every surviving run passes *and* the corrupted run
//! is rejected.

use std::process::ExitCode;

use dps_bench::chaos::{
    chaos_document, chaos_run, policy_name, sweep_governor, ChaosRun, ChaosSpec,
    GovernorComparison, SWEEP_POLICIES,
};
use dps_bench::harness::ReportArgs;
use dps_lock::{ConflictPolicy, FaultPlan};
use dps_obs::Verdict;

fn main() -> ExitCode {
    dps_server::shutdown::install();
    let args = ReportArgs::parse();
    let (quick, json) = (args.quick(), args.json());
    let workers = args.flag_u64("--workers").unwrap_or(8) as usize;
    let seed = args.flag_u64("--seed").unwrap_or(0xD1CE_2026);
    let worker_counts: Vec<usize> = if quick { vec![workers] } else { vec![2, workers] };
    let (tasks, resources, work_us) = if quick { (24, 3, 100) } else { (48, 4, 150) };

    eprintln!(
        "chaos gate: {} plans x {} policies x {:?} workers, {tasks} tasks over \
         {resources} tallies, {work_us}us RHS, seed {seed:#x}",
        FaultPlan::NAMED.len(),
        SWEEP_POLICIES.len(),
        worker_counts
    );

    // ---- the sweep ----
    let mut runs: Vec<ChaosRun> = Vec::new();
    for (plan_name, ctor) in FaultPlan::NAMED {
        for policy in SWEEP_POLICIES {
            for &w in &worker_counts {
                let run = chaos_run(ChaosSpec {
                    plan: plan_name,
                    fault: ctor(seed),
                    policy,
                    workers: w,
                    tasks,
                    resources,
                    work_us,
                    busy: false,
                    governor: Some(sweep_governor(seed)),
                    telemetry: false,
                });
                eprintln!(
                    "  [{plan_name:>13} / {:<13} / {w} workers] {}/{} commits, {} aborts \
                     ({} injected), {} faults, checker {}",
                    policy_name(policy),
                    run.commits,
                    tasks,
                    run.aborts,
                    run.injected_aborts,
                    run.faults.total(),
                    run.verdict.name()
                );
                for err in run.structural_errors.iter().take(3) {
                    eprintln!("    ! {err}");
                }
                runs.push(run);
            }
        }
    }

    // ---- falsifiability probe ----
    // Odd task count: flipping the low bit of the last recovered slot
    // always breaks 0..n contiguity, so rejection is guaranteed, not
    // probabilistic.
    let corrupted = chaos_run(ChaosSpec {
        plan: "corrupted",
        fault: FaultPlan {
            corrupt_fire_seq: true,
            ..FaultPlan::quiet(seed)
        },
        policy: ConflictPolicy::AbortReaders,
        workers: workers.min(4),
        tasks: if tasks % 2 == 0 { tasks + 1 } else { tasks },
        resources,
        work_us: 0,
        busy: false,
        governor: None,
        telemetry: false,
    });
    let rejected = corrupted.verdict == Verdict::Inconsistent;
    eprintln!(
        "  [    corrupted / falsifiability ] checker {} ({} structural errors) — {}",
        corrupted.verdict.name(),
        corrupted.structural_errors.len(),
        if rejected { "rejected as required" } else { "ACCEPTED (oracle is a rubber stamp!)" }
    );

    // ---- governor A/B on the doom storm (XS.3) ----
    // The governor's target regime is §5's bad corner: a *hot spot*
    // (every task charges one tally) with an *expensive* RHS, under a
    // forced-abort storm — each doom throws away the full RHS cost, so
    // wasted work dominates and backing off / escalating pays. (The
    // sweep above covers the cheap-RHS regime, where the governor is
    // expected to stay roughly neutral.)
    // The RHS must be expensive relative to the engine's fixed
    // per-commit overhead (matcher re-derivation, condvar handoff):
    // the governor trades parallel redundancy for serial certainty,
    // which only pays when each thrown-away attempt burns real
    // processor time.
    let ab_work_us = if quick { 800 } else { 2_500 };
    // Hot-spot tuning: small backoff (the hot spot is already
    // throughput-bound, long sleeps only add latency), a tight
    // starvation bound so the serial fallback engages within a few
    // doomed retries, and a long cooldown so it sticks for the rest of
    // the storm.
    let ab_governor = dps_core::GovernorConfig {
        backoff_base_us: 10,
        backoff_cap_us: 150,
        storm_window: 8,
        storm_threshold_pm: 300,
        escalate_after: 2,
        starvation_bound: 2,
        cooldown_commits: 64,
        seed,
    };
    // The governor-ON leg carries the live-telemetry sampler: its
    // timeline (escalations, serial-fallback occupancy, backoff level
    // against the commit/abort rates) is embedded in the report.
    let leg = |governor, telemetry| {
        chaos_run(ChaosSpec {
            plan: "doom_storm",
            fault: FaultPlan::doom_storm(seed),
            policy: ConflictPolicy::AbortReaders,
            workers,
            tasks,
            resources: 1,
            work_us: ab_work_us,
            busy: true,
            governor,
            telemetry,
        })
    };
    let comparison = GovernorComparison {
        off: leg(None, false),
        on: leg(Some(ab_governor), true),
    };
    eprintln!(
        "  governor A/B (doom_storm, {workers} workers): off {:.1} commits/s \
         ({} aborts, {:.1}ms wasted) -> on {:.1} commits/s ({} aborts, {:.1}ms wasted)",
        comparison.off.commits as f64 / comparison.off.secs.max(1e-9),
        comparison.off.aborts,
        comparison.off.wasted_ms,
        comparison.on.commits as f64 / comparison.on.secs.max(1e-9),
        comparison.on.aborts,
        comparison.on.wasted_ms,
    );

    // A/B legs must themselves be consistent runs.
    let ab_ok = comparison.off.passes() && comparison.on.passes();

    let doc = chaos_document(seed, &runs, &corrupted, &comparison);
    if json {
        println!("{}", doc.to_string_pretty());
    }
    args.write_bench_out(&doc);

    let all_pass = runs.iter().all(ChaosRun::passes);
    if all_pass && rejected && ab_ok {
        eprintln!(
            "\nchaos: all {} surviving runs drained + replayed consistently; \
             corrupted run rejected",
            runs.len() + 2
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\nchaos: GATE FAILED (survivors ok: {all_pass}, a/b ok: {ab_ok}, corrupted rejected: {rejected})");
        ExitCode::FAILURE
    }
}
