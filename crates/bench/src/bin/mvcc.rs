//! MVCC gate: stock lock-based `R_c` vs snapshot condition reads, A/B
//! on the doom-storm chaos plan over the false-conflict workload (see
//! [`dps_bench::mvcc`]). Emits the `dps-mvcc-report-v1` document and
//! exits 0 iff every gate holds:
//!
//! * the MVCC leg records **zero** condition-read aborts;
//! * its wasted-work fraction `f` is **strictly below** stock;
//! * both legs drain and replay through the §3 oracle;
//! * the MVCC history passes the SI/serializability polygraph;
//! * both falsifiability probes (write skew, swapped version order)
//!   are rejected by that polygraph.
//!
//! Usage: `mvcc [--quick] [--json] [--workers N] [--seed S]
//! [--bench-out PATH]`. With `--json` the report goes to stdout (human
//! summary to stderr); `--bench-out` additionally snapshots it to a
//! file. `obs_check` shape-checks the document in CI.

use std::process::ExitCode;

use dps_bench::harness::ReportArgs;
use dps_bench::mvcc::{mvcc_document, mvcc_leg, probe_version_order, probe_write_skew, MvccGates, MvccSpec};
use dps_lock::ConflictPolicy;

fn main() -> ExitCode {
    dps_server::shutdown::install();
    let args = ReportArgs::parse();
    let (quick, json) = (args.quick(), args.json());
    let workers = args.flag_u64("--workers").unwrap_or(8) as usize;
    let seed = args.flag_u64("--seed").unwrap_or(0x51AB_2026);
    let (guards, g_steps, producers, p_steps, work_us) = if quick {
        (6, 4, 6, 4, 300)
    } else {
        (8, 8, 8, 8, 800)
    };
    let spec = MvccSpec {
        seed,
        workers,
        guards,
        g_steps,
        producers,
        p_steps,
        work_us,
    };

    eprintln!(
        "mvcc gate: false_conflict_stream({guards}x{g_steps}, {producers}x{p_steps}), \
         doom_storm seed {seed:#x}, {workers} workers, {work_us}us busy RHS"
    );

    let leg = |name: &str, policy| {
        let l = mvcc_leg(&spec, policy);
        eprintln!(
            "  [{name:>5}] {}/{} commits in {:.1}ms — {} aborts \
             ({} reader, {} snapshot-stale, {} injected), f = {:.3}, checker {}{}",
            l.commits,
            l.expected,
            l.secs * 1e3,
            l.aborts.total(),
            l.aborts.reader_aborts(),
            l.aborts.snapshot_stale,
            l.aborts.injected,
            l.wasted_fraction,
            l.verdict.name(),
            match l.si {
                Some(v) => format!(", si {}", v.name()),
                None => String::new(),
            },
        );
        for err in l.structural_errors.iter().take(3) {
            eprintln!("    ! {err}");
        }
        l
    };
    let stock = leg("stock", ConflictPolicy::AbortReaders);
    let mvcc = leg("mvcc", ConflictPolicy::MvccSnapshot);

    let skew = probe_write_skew();
    let order = probe_version_order();
    eprintln!(
        "  probes: write skew {} ({} edges, cycle {}), version order {} ({} violations)",
        skew.verdict().name(),
        skew.edges,
        if skew.cycle.is_some() { "found" } else { "missed" },
        order.verdict().name(),
        order.violations.len(),
    );

    let gates = MvccGates::evaluate(&stock, &mvcc, &skew, &order);
    let doc = mvcc_document(&spec, &stock, &mvcc, &skew, &order, &gates);
    if json {
        println!("{}", doc.to_string_pretty());
    }
    args.write_bench_out(&doc);

    eprintln!(
        "\nmvcc gates: reader-aborts-zero {} | f {:.3} -> {:.3} improved {} | \
         oracle {} | si {} | probes {}",
        gates.reader_aborts_zero,
        stock.wasted_fraction,
        mvcc.wasted_fraction,
        gates.wasted_work_improved,
        gates.oracle,
        gates.si_checker,
        gates.probes_rejected,
    );
    if gates.all() {
        eprintln!("mvcc: GATE PASSED");
        ExitCode::SUCCESS
    } else {
        eprintln!("mvcc: GATE FAILED");
        ExitCode::FAILURE
    }
}
