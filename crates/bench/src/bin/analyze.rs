//! Trace-analysis driver: runs the dynamic parallel engine under
//! **both** lock protocols (2PL and the paper's `Rc`/`Ra`/`Wa`) on a
//! contended workload with observability on, then explains each run:
//!
//! * per-resource **contention table** — blocked-ns, distinct blockers
//!   and aborts caused (the §5 "degree of conflict" made visible);
//! * **critical path** — the heaviest Begin→{Block-on-holder,
//!   Doom-by-committer}→Commit chain, effective parallelism (total
//!   busy ÷ critical path) and the wasted-work fraction `f`;
//! * **semantic-consistency checker** — the commit sequence recovered
//!   from `Fire` events is structurally verified, cross-checked
//!   against the engine trace, and replayed through the single-thread
//!   execution graph (§3 Defs 3.1–3.2): Theorem 2 (`ES_M ⊆
//!   ES_single`) as an executable assertion.
//!
//! Usage: `analyze [--quick] [--json] [--workers N]`. With `--json`
//! the `dps-analysis-report-v1` document goes to stdout (human tables
//! to stderr); `obs_check` shape-checks it in CI. Exit 1 if any run's
//! checker verdict is not `consistent`.

use std::process::ExitCode;

use dps_bench::analysis::{analysis_document, analyzed_run, AnalyzedRun};
use dps_lock::Protocol;
use dps_obs::Verdict;

fn main() -> ExitCode {
    dps_server::shutdown::install();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let workers = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(8);
    // Contended-but-not-degenerate: several hot tallies, so the
    // contention table has multiple rows and the critical path is
    // non-trivial under both protocols.
    let (tasks, resources, work_us) = if quick { (64, 4, 100) } else { (192, 8, 200) };

    eprintln!(
        "trace analysis: {tasks} tasks over {resources} shared tallies, \
         {work_us}µs simulated RHS, {workers} workers"
    );

    let runs: Vec<AnalyzedRun> = [Protocol::RcRaWa, Protocol::TwoPhase]
        .into_iter()
        .map(|protocol| {
            let run = analyzed_run(protocol, workers, tasks, resources, work_us);
            run.print_human();
            run
        })
        .collect();

    if json {
        println!("{}", analysis_document(&runs, 16).to_string_pretty());
    }

    if runs.iter().all(|r| r.analysis.verdict() == Verdict::Consistent) {
        eprintln!("\nanalyze: all runs consistent (firing sequence ∈ ES_single)");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nanalyze: INCONSISTENT run detected — see checker output above");
        ExitCode::FAILURE
    }
}
