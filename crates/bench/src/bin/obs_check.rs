//! Shape-checks a `dps-scaling-report-v1` JSON document (as emitted by
//! `scaling --json`), a standalone `dps-analysis-report-v1` document
//! (as emitted by `analyze --json`), a `dps-chaos-report-v1` document
//! (as emitted by `chaos --json`), a `dps-match-report-v1` document
//! (as emitted by `matchbench --json`), a `dps-mvcc-report-v1`
//! document (as emitted by `mvcc --json`), a `dps-commute-report-v1`
//! document (as emitted by `commute --json`), a
//! `dps-recovery-report-v1` document (as emitted by `recovery
//! --json`), **or** a `dps-server-report-v1` document (as emitted by
//! `loadgen --json`),
//! so CI can validate the observability pipeline end-to-end without
//! `serde` or external tooling. Dispatch is on the top-level `schema`
//! tag.
//!
//! Usage: `obs_check <report.json>` (or `-` / no argument for stdin).
//! Exit 0 if the document is well-formed, 1 with a diagnostic otherwise.
//!
//! Scaling-report checks:
//! * top-level schema tag and sweep arrays;
//! * the embedded `dps-obs-report-v1` document: every phase histogram
//!   has `count`/`p50_ns`/`p95_ns`/`p99_ns`/`max_ns`, with ordered
//!   percentiles;
//! * every abort cause is present and the per-cause counts sum to the
//!   event-counter abort total;
//! * zero recorded anomalies;
//! * the measured observe-ON/OFF ratio is below the 5% budget;
//! * the embedded analysis document, if present (reports written
//!   before the analysis layer existed still pass — old shape).
//!
//! Analysis-report checks (embedded or standalone):
//! * every run has a contention table, a critical path with consistent
//!   busy/wasted accounting and `wasted_fraction` in `[0, 1]`;
//! * every run's checker section reports zero structural errors and a
//!   replayed, `consistent` verdict — the CI gate for §3 Theorem 2.
//!
//! Match-report checks (the sharded-pipeline gate):
//! * every sweep row has sane counters and publishes exactly one delta
//!   batch per commit, with zero aborts (the workload is conflict-free);
//! * the instrumented run's `match_apply` histogram is populated with
//!   ordered percentiles, and the fan-out counters show the plan
//!   actually sharded (`shards > 1`, free-advances observed);
//! * the recomputed speed-ups clear the ISSUE 5 gates: 2 shards beat
//!   1 shard, and max shards beat 1 shard by ≥ 1.5×.
//!
//! Chaos-report checks (the robustness gate):
//! * every sweep run drained its workload (`commits ==
//!   expected_commits`) and its checker section is `consistent` with a
//!   `consistent` replay and zero structural errors;
//! * the falsifiability probe was *rejected* (a checker that accepts a
//!   corrupted commit sequence proves nothing);
//! * the governor A/B block carries both legs with sane throughput;
//! * the overall verdict is `consistent`.
//!
//! Mvcc-report checks (the abort-free `R_c` gate):
//! * both A/B legs drained, replayed `consistent` through the §3
//!   oracle, with per-cause abort counts summing to their totals;
//! * the MVCC leg recorded **zero** condition-read aborts, a strictly
//!   lower wasted-work fraction than stock, and an SI polygraph
//!   verdict of `consistent`;
//! * both falsifiability probes (write skew, swapped version order)
//!   were rejected, and every gate boolean is true.
//!
//! Every report kind may also embed a `dps-timeline-v1` document under
//! a `timeline` key (the live-telemetry sampler's series). When
//! present it must parse, validate (monotone counters, equal-length
//! rings) and carry the engine's core series; reports written before
//! the telemetry layer carry no key and still pass. The scaling report
//! additionally gates `telemetry_overhead.ratio` below 1.05.
//!
//! Server-report checks (the multi-session front-door gate):
//! * every leg's client-side cause sum closes (committed + shed +
//!   aborted + failed == offered) and its server-side books balance
//!   (admitted == commits + aborts, typed timeout/disconnect causes
//!   within the abort total);
//! * per-session counters sum to the globals — a session whose books
//!   vanish on disconnect would hide a leaked transaction;
//! * every leg (including the disconnect-chaos leg) drained with zero
//!   held locks and snapshot pins and a `consistent` §3 replay;
//! * the chaos leg actually disconnected, and every gate boolean
//!   (shed p99 improvement, goodput floor, disconnect minimum) is true.
//!
//! Recovery-report checks (the crash-recovery gate):
//! * every kill-point run drained in memory, recovered to a durable
//!   horizon consistent with its kill site (strictly before the killed
//!   commit for dropped/torn tails, *at* it after the fsync; torn
//!   kills actually truncated a torn tail), with `checkpoint + redo ==
//!   horizon` accounting, an oracle-validated prefix, and a resumed
//!   drain — verdict `consistent` on every run;
//! * the corrupted mid-log record was rejected (the torn-tail rule
//!   only forgives the final frame);
//! * the group-commit A/B shows durability-on within the 1.25×
//!   budget, with fewer fsyncs than appends and piggybacked syncs
//!   observed — and every gate boolean true.

use std::io::Read;
use std::process::ExitCode;

use dps_obs::json::{self, Json};
use dps_obs::{TimelineDoc, TIMELINE_SCHEMA};

/// Validates an embedded `dps-timeline-v1` document, when present.
/// Reports written before the live-telemetry layer carry no `timeline`
/// key (or a null one — legs that ran without the sampler); both read
/// as "nothing to check", so the old shapes still pass.
fn check_timeline(doc: &Json, at: &str) -> Result<(), String> {
    let tl = match doc.get("timeline") {
        None | Some(Json::Null) => return Ok(()),
        Some(tl) => tl,
    };
    let schema = tl
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{at}.timeline: missing schema"))?;
    if schema != TIMELINE_SCHEMA {
        return Err(format!("{at}.timeline: unexpected schema {schema:?}"));
    }
    let parsed = TimelineDoc::from_json(tl)
        .map_err(|e| format!("{at}.timeline: does not parse: {e}"))?;
    parsed
        .validate()
        .map_err(|e| format!("{at}.timeline: invalid: {e}"))?;
    if parsed.ticks == 0 {
        return Err(format!("{at}.timeline: zero ticks — the sampler never ran"));
    }
    if parsed.series.is_empty() {
        return Err(format!("{at}.timeline: no series — no probes registered"));
    }
    // The engine registers these on every run, whatever the workload;
    // a missing one means probe registration drifted.
    for name in ["engine.commits", "lock.grants", "pipeline.batches"] {
        if parsed.series(name).is_none() {
            return Err(format!("{at}.timeline: core series {name:?} missing"));
        }
    }
    Ok(())
}

/// Validates a `dps-analysis-report-v1` document (`where` prefixes
/// diagnostics so embedded and standalone uses read naturally).
fn check_analysis(doc: &Json, at: &str) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{at}: missing schema"))?;
    if schema != "dps-analysis-report-v1" {
        return Err(format!("{at}: unexpected schema {schema:?}"));
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{at}: missing runs array"))?;
    if runs.is_empty() {
        return Err(format!("{at}: runs is empty"));
    }
    for (i, run) in runs.iter().enumerate() {
        let at = format!("{at}.runs[{i}]");
        run.get("protocol")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{at}: missing protocol"))?;
        for key in ["workers", "commits", "aborts"] {
            run.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{at}: missing {key}"))?;
        }
        // Contention rows.
        let rows = run
            .get("contention")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{at}: missing contention table"))?;
        for (j, row) in rows.iter().enumerate() {
            for key in [
                "resource",
                "blocks",
                "blocked_ns",
                "distinct_blockers",
                "dooms_caused",
                "deadlock_aborts",
            ] {
                row.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{at}.contention[{j}]: missing {key}"))?;
            }
        }
        // Critical path block.
        let need = |key: &str| -> Result<u64, String> {
            run.at(&["critical_path", key])
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{at}.critical_path: missing {key}"))
        };
        let total = need("total_busy_ns")?;
        let useful = need("useful_busy_ns")?;
        let wasted = need("wasted_ns")?;
        let critical = need("critical_path_ns")?;
        need("wall_ns")?;
        if useful + wasted != total {
            return Err(format!(
                "{at}.critical_path: useful ({useful}) + wasted ({wasted}) != total busy ({total})"
            ));
        }
        if critical > total {
            return Err(format!(
                "{at}.critical_path: critical path ({critical}) exceeds total busy ({total})"
            ));
        }
        let f = run
            .at(&["critical_path", "wasted_fraction"])
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{at}.critical_path: missing wasted_fraction"))?;
        if !(0.0..=1.0).contains(&f) {
            return Err(format!("{at}.critical_path: wasted_fraction {f} outside [0, 1]"));
        }
        run.at(&["critical_path", "critical_path_txns"])
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{at}.critical_path: missing critical_path_txns"))?;
        for key in ["effective_parallelism", "max_speedup_estimate"] {
            let v = run
                .at(&["critical_path", key])
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{at}.critical_path: missing {key}"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{at}.critical_path: {key} = {v} is not sane"));
            }
        }
        // Checker gate.
        let errors = run
            .at(&["checker", "structural_errors"])
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{at}.checker: missing structural_errors"))?;
        if !errors.is_empty() {
            return Err(format!("{at}.checker: {} structural errors", errors.len()));
        }
        let replay = run
            .at(&["checker", "replay"])
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{at}.checker: missing replay"))?;
        if replay != "consistent" {
            return Err(format!("{at}.checker: replay is {replay:?}, not \"consistent\""));
        }
        let verdict = run
            .at(&["checker", "verdict"])
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{at}.checker: missing verdict"))?;
        if verdict != "consistent" {
            return Err(format!("{at}.checker: verdict is {verdict:?}"));
        }
    }
    let overall = doc
        .get("verdict")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{at}: missing overall verdict"))?;
    if overall != "consistent" {
        return Err(format!("{at}: overall verdict is {overall:?}"));
    }
    Ok(())
}

/// Validates a `dps-chaos-report-v1` document (from `chaos --json`).
fn check_chaos(doc: &Json) -> Result<(), String> {
    doc.get("seed")
        .and_then(Json::as_u64)
        .ok_or("chaos: missing seed")?;

    // ---- sweep runs ----
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("chaos: missing runs array")?;
    if runs.is_empty() {
        return Err("chaos: runs is empty".into());
    }
    for (i, run) in runs.iter().enumerate() {
        let at = format!("chaos.runs[{i}]");
        run.get("plan")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{at}: missing plan"))?;
        let policy = run
            .get("policy")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{at}: missing policy"))?;
        if !matches!(policy, "abort_readers" | "revalidate" | "mvcc_snapshot") {
            return Err(format!("{at}: unknown policy {policy:?}"));
        }
        let mut vals = Vec::new();
        for key in [
            "workers",
            "commits",
            "expected_commits",
            "aborts",
            "injected_aborts",
            "faults_injected",
        ] {
            vals.push(
                run.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{at}: missing {key}"))?,
            );
        }
        let (commits, expected) = (vals[1], vals[2]);
        if commits != expected {
            return Err(format!(
                "{at}: drained {commits}/{expected} — a surviving run must drain its workload"
            ));
        }
        for key in ["secs", "wasted_ms"] {
            run.get(key)
                .and_then(Json::as_f64)
                .filter(|v| v.is_finite() && *v >= 0.0)
                .ok_or_else(|| format!("{at}: missing or insane {key}"))?;
        }
        // A `mvcc_snapshot` run is new-shape by definition and must be
        // abort-free on the condition-read channel — the tentpole
        // property, enforced wherever the policy shows up.
        if policy == "mvcc_snapshot" {
            let readers = run
                .get("reader_aborts")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{at}: mvcc_snapshot run missing reader_aborts"))?;
            if readers != 0 {
                return Err(format!(
                    "{at}: {readers} condition-read aborts under mvcc_snapshot"
                ));
            }
        }
        // Checker gate: counts here, not sample strings (the samples
        // live on stderr).
        if run
            .at(&["checker", "structural_errors"])
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{at}.checker: missing structural_errors"))?
            != 0
        {
            return Err(format!("{at}.checker: structural errors on a surviving run"));
        }
        for (key, want) in [("replay", "consistent"), ("verdict", "consistent")] {
            let got = run
                .at(&["checker", key])
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{at}.checker: missing {key}"))?;
            if got != want {
                return Err(format!("{at}.checker: {key} is {got:?}, not {want:?}"));
            }
        }
    }

    // ---- falsifiability probe ----
    if doc.at(&["falsifiability", "rejected"]) != Some(&Json::Bool(true)) {
        return Err(
            "chaos.falsifiability: the corrupted run was not rejected — the oracle \
             is a rubber stamp"
                .into(),
        );
    }
    if doc
        .at(&["falsifiability", "structural_errors"])
        .and_then(Json::as_u64)
        .ok_or("chaos.falsifiability: missing structural_errors")?
        == 0
    {
        return Err("chaos.falsifiability: rejected without a structural error".into());
    }

    // ---- governor A/B ----
    for leg in ["off", "on"] {
        let at = format!("chaos.governor_comparison.{leg}");
        for key in ["commits", "aborts"] {
            doc.at(&["governor_comparison", leg, key])
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{at}: missing {key}"))?;
        }
        doc.at(&["governor_comparison", leg, "throughput"])
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("{at}: missing or non-positive throughput"))?;
        doc.at(&["governor_comparison", leg, "wasted_ms"])
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite() && *v >= 0.0)
            .ok_or_else(|| format!("{at}: missing wasted_ms"))?;
    }

    // ---- embedded timeline (governor-ON doom-storm leg) ----
    check_timeline(doc, "chaos")?;

    // ---- overall verdict ----
    let verdict = doc
        .get("verdict")
        .and_then(Json::as_str)
        .ok_or("chaos: missing verdict")?;
    if verdict != "consistent" {
        return Err(format!("chaos: verdict is {verdict:?}"));
    }
    Ok(())
}

/// Validates a `dps-match-report-v1` document (from `matchbench --json`)
/// — the sharded-match-pipeline gate.
fn check_match(doc: &Json) -> Result<(), String> {
    for key in ["groups", "pairs", "workers", "reps"] {
        doc.at(&["config", key])
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("match.config: missing {key}"))?;
    }

    // ---- sweep rows ----
    let sweep = doc
        .get("sweep")
        .and_then(Json::as_arr)
        .ok_or("match: missing sweep array")?;
    if sweep.len() < 2 {
        return Err("match: sweep needs at least shard counts 1 and 2".into());
    }
    let mut rates = Vec::new();
    for (i, row) in sweep.iter().enumerate() {
        let at = format!("match.sweep[{i}]");
        let mut vals = Vec::new();
        for key in [
            "shards",
            "plan_shards",
            "commits",
            "aborts",
            "batches",
            "applies",
            "free_advances",
            "steals",
        ] {
            vals.push(
                row.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{at}: missing {key}"))?,
            );
        }
        let (commits, aborts, batches) = (vals[2], vals[3], vals[4]);
        if aborts != 0 {
            return Err(format!("{at}: {aborts} aborts on the conflict-free workload"));
        }
        if batches != commits {
            return Err(format!(
                "{at}: {batches} delta batches for {commits} commits — publish must be 1:1"
            ));
        }
        let secs = row
            .get("secs")
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("{at}: missing or non-positive secs"))?;
        rates.push(commits as f64 / secs);
    }

    // ---- recomputed ISSUE 5 gates ----
    if rates[1] <= rates[0] {
        return Err(format!(
            "match: 2 shards ({:.0}/s) did not beat 1 shard ({:.0}/s)",
            rates[1], rates[0]
        ));
    }
    let rmax = rates.last().copied().unwrap_or(0.0);
    if rmax < 1.5 * rates[0] {
        return Err(format!(
            "match: max shards only {:.2}x over 1 shard (< 1.5x floor)",
            rmax / rates[0]
        ));
    }
    for key in ["x2_over_x1", "max_over_x1"] {
        doc.at(&["speedup", key])
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("match.speedup: missing {key}"))?;
    }

    // ---- embedded obs report: match_apply histogram + fan-out ----
    let need_u64 = |path: &[&str]| -> Result<u64, String> {
        doc.at(path)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("match: missing integer at {}", path.join(".")))
    };
    let obs_schema = doc
        .at(&["observability", "schema"])
        .and_then(Json::as_str)
        .ok_or("match: missing observability.schema")?;
    if obs_schema != "dps-obs-report-v1" {
        return Err(format!("match: unexpected observability schema {obs_schema:?}"));
    }
    let mut vals = Vec::new();
    for key in ["count", "p50_ns", "p95_ns", "p99_ns", "max_ns"] {
        vals.push(need_u64(&["observability", "phases", "match_apply", key])?);
    }
    let (count, p50, p95, p99, max) = (vals[0], vals[1], vals[2], vals[3], vals[4]);
    if count == 0 {
        return Err("match: match_apply histogram is empty on an instrumented run".into());
    }
    if !(p50 <= p95 && p95 <= p99 && p99 <= max) {
        return Err(format!(
            "match: match_apply percentiles not ordered ({p50} / {p95} / {p99} / max {max})"
        ));
    }
    let shards = need_u64(&["observability", "fanout", "shards"])?;
    if shards < 2 {
        return Err(format!("match: instrumented plan has {shards} shard(s) — not sharded"));
    }
    let batches = need_u64(&["observability", "fanout", "batches"])?;
    let applies = need_u64(&["observability", "fanout", "applies"])?;
    let free = need_u64(&["observability", "fanout", "free_advances"])?;
    need_u64(&["observability", "fanout", "steals"])?;
    if batches == 0 || applies == 0 {
        return Err("match: fan-out counters show no published batches".into());
    }
    if free == 0 {
        return Err(
            "match: zero free-advances — unaffected shards are paying for every batch".into(),
        );
    }
    if need_u64(&["observability", "events", "anomalies"])? != 0 {
        return Err("match: events.anomalies is non-zero".into());
    }

    // ---- MVCC comparison leg ----
    // Joined the report with the MVCC read path; reports written before
    // it carry no key (old shape still passes). When present: the
    // snapshot read path must keep the conflict-free workload abort-free
    // and within throughput range of the stock locks.
    if let Some(mvcc) = doc.get("mvcc") {
        let policy = mvcc
            .get("policy")
            .and_then(Json::as_str)
            .ok_or("match.mvcc: missing policy")?;
        if policy != "mvcc_snapshot" {
            return Err(format!("match.mvcc: unexpected policy {policy:?}"));
        }
        let aborts = mvcc
            .at(&["sample", "aborts"])
            .and_then(Json::as_u64)
            .ok_or("match.mvcc: missing sample.aborts")?;
        if aborts != 0 {
            return Err(format!("match.mvcc: {aborts} aborts on the conflict-free workload"));
        }
        let ratio = mvcc
            .get("vs_stock_max_shards")
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or("match.mvcc: missing vs_stock_max_shards")?;
        if ratio < 0.5 {
            return Err(format!(
                "match.mvcc: snapshot reads at {ratio:.2}x of stock — version-store \
                 overhead is eating the pipeline"
            ));
        }
    }

    // ---- embedded timeline (instrumented max-shards run) ----
    check_timeline(doc, "match")?;
    Ok(())
}

/// Validates a `dps-mvcc-report-v1` document (from `mvcc --json`) — the
/// abort-free `R_c` gate.
fn check_mvcc(doc: &Json) -> Result<(), String> {
    doc.get("seed").and_then(Json::as_u64).ok_or("mvcc: missing seed")?;
    doc.get("plan").and_then(Json::as_str).ok_or("mvcc: missing plan")?;
    doc.at(&["workload", "name"])
        .and_then(Json::as_str)
        .ok_or("mvcc: missing workload.name")?;
    for key in ["guards", "producers", "work_us", "workers"] {
        doc.at(&["workload", key])
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("mvcc.workload: missing {key}"))?;
    }

    // ---- the two legs ----
    let mut fractions = Vec::new();
    for (leg, want_policy) in [("stock", "abort_readers"), ("mvcc", "mvcc_snapshot")] {
        let at = format!("mvcc.{leg}");
        let run = doc.get(leg).ok_or_else(|| format!("{at}: missing leg"))?;
        let policy = run
            .get("policy")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{at}: missing policy"))?;
        if policy != want_policy {
            return Err(format!("{at}: policy is {policy:?}, not {want_policy:?}"));
        }
        let commits = run
            .get("commits")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{at}: missing commits"))?;
        let expected = run
            .get("expected_commits")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{at}: missing expected_commits"))?;
        if commits != expected {
            return Err(format!("{at}: drained {commits}/{expected}"));
        }
        // Per-cause abort accounting must sum to the reported total.
        let cause = |key: &str| -> Result<u64, String> {
            run.at(&["aborts", key])
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{at}.aborts: missing {key}"))
        };
        let sum = cause("doomed")?
            + cause("deadlock")?
            + cause("stale")?
            + cause("revalidation")?
            + cause("eval_error")?
            + cause("timeout")?
            + cause("injected")?
            + cause("snapshot_stale")?;
        let total = cause("total")?;
        if sum != total {
            return Err(format!("{at}.aborts: causes sum to {sum} but total is {total}"));
        }
        let readers = cause("reader_aborts")?;
        if readers != cause("doomed")? + cause("revalidation")? {
            return Err(format!("{at}.aborts: reader_aborts {readers} != doomed + revalidation"));
        }
        let f = run
            .get("wasted_fraction")
            .and_then(Json::as_f64)
            .filter(|v| (0.0..=1.0).contains(v))
            .ok_or_else(|| format!("{at}: wasted_fraction missing or outside [0, 1]"))?;
        fractions.push(f);
        if run
            .at(&["checker", "structural_errors"])
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{at}.checker: missing structural_errors"))?
            != 0
        {
            return Err(format!("{at}.checker: structural errors"));
        }
        for (key, want) in [("replay", "consistent"), ("verdict", "consistent")] {
            let got = run
                .at(&["checker", key])
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{at}.checker: missing {key}"))?;
            if got != want {
                return Err(format!("{at}.checker: {key} is {got:?}"));
            }
        }
        if leg == "mvcc" {
            if readers != 0 {
                return Err(format!("{at}: {readers} condition-read aborts — the tentpole gate"));
            }
            let si = run
                .at(&["checker", "si"])
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{at}.checker: missing si verdict"))?;
            if si != "consistent" {
                return Err(format!("{at}.checker: si is {si:?}"));
            }
            let pins = run
                .get("snapshot_pins")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{at}: missing snapshot_pins"))?;
            if pins < commits {
                return Err(format!(
                    "{at}: {pins} snapshot pins for {commits} commits — claim \
                     validation is not pinning"
                ));
            }
        }
    }
    if fractions[1] >= fractions[0] {
        return Err(format!(
            "mvcc: wasted-work f {:.3} (mvcc) not strictly below {:.3} (stock)",
            fractions[1], fractions[0]
        ));
    }

    // ---- probes and gates ----
    for key in ["write_skew_rejected", "version_order_rejected"] {
        if doc.at(&["probes", key]) != Some(&Json::Bool(true)) {
            return Err(format!("mvcc.probes: {key} is not true — the polygraph is a rubber stamp"));
        }
    }
    for key in [
        "reader_aborts_zero",
        "wasted_work_improved",
        "oracle",
        "si_checker",
        "probes_rejected",
    ] {
        if doc.at(&["gates", key]) != Some(&Json::Bool(true)) {
            return Err(format!("mvcc.gates: {key} is not true"));
        }
    }
    let verdict = doc
        .get("verdict")
        .and_then(Json::as_str)
        .ok_or("mvcc: missing verdict")?;
    if verdict != "consistent" {
        return Err(format!("mvcc: verdict is {verdict:?}"));
    }

    // ---- embedded timeline (MVCC leg) ----
    check_timeline(doc, "mvcc")?;
    Ok(())
}

/// Validates a `dps-commute-report-v1` document (from `commute
/// --json`) — the coordination-avoidance gate.
fn check_commute(doc: &Json) -> Result<(), String> {
    doc.get("seed").and_then(Json::as_u64).ok_or("commute: missing seed")?;
    doc.at(&["workload", "name"])
        .and_then(Json::as_str)
        .ok_or("commute: missing workload.name")?;
    for key in [
        "counters",
        "counter_steps",
        "makers",
        "maker_steps",
        "work_us",
        "workers",
        "match_shards",
    ] {
        doc.at(&["workload", key])
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("commute.workload: missing {key}"))?;
    }

    // ---- the two legs ----
    for leg in ["locked", "elided"] {
        let at = format!("commute.{leg}");
        let run = doc.get(leg).ok_or_else(|| format!("{at}: missing leg"))?;
        let mode = run
            .get("mode")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{at}: missing mode"))?;
        if mode != leg {
            return Err(format!("{at}: mode is {mode:?}, not {leg:?}"));
        }
        let commits = run
            .get("commits")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{at}: missing commits"))?;
        let expected = run
            .get("expected_commits")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{at}: missing expected_commits"))?;
        if commits != expected {
            return Err(format!("{at}: drained {commits}/{expected}"));
        }
        // Per-cause abort accounting — including the elision-stale
        // channel — must sum to the reported total.
        let cause = |key: &str| -> Result<u64, String> {
            run.at(&["aborts", key])
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{at}.aborts: missing {key}"))
        };
        let sum = cause("doomed")?
            + cause("deadlock")?
            + cause("stale")?
            + cause("revalidation")?
            + cause("eval_error")?
            + cause("timeout")?
            + cause("injected")?
            + cause("snapshot_stale")?
            + cause("elision_stale")?;
        let total = cause("total")?;
        if sum != total {
            return Err(format!("{at}.aborts: causes sum to {sum} but total is {total}"));
        }
        let field = |key: &str| -> Result<u64, String> {
            run.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{at}: missing {key}"))
        };
        let (grants, blocks) = (field("lock_grants")?, field("lock_blocks")?);
        let (elided, receipts) = (field("lock_elided")?, field("elided_commits")?);
        let blocked_ns = field("blocked_ns")?;
        run.get("contention")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{at}: missing contention table"))?;
        if leg == "elided" {
            // The tentpole gate: zero lock-manager traffic, every
            // skipped acquisition booked, every commit receipted, and
            // nothing ever waited on an elided resource.
            if grants != 0 || blocks != 0 {
                return Err(format!(
                    "{at}: {grants} grants / {blocks} blocks — the fast path locked"
                ));
            }
            if elided == 0 {
                return Err(format!("{at}: no elided acquisitions booked"));
            }
            if receipts != commits {
                return Err(format!("{at}: {receipts} ElidedCommit receipts for {commits} commits"));
            }
            if blocked_ns != 0 {
                return Err(format!("{at}: {blocked_ns}ns blocked on elided resources"));
            }
        } else {
            if elided != 0 {
                return Err(format!("{at}: locking leg booked {elided} elided acquisitions"));
            }
            if grants == 0 {
                return Err(format!("{at}: locking leg acquired no locks"));
            }
        }
        if run
            .at(&["checker", "structural_errors"])
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{at}.checker: missing structural_errors"))?
            != 0
        {
            return Err(format!("{at}.checker: structural errors"));
        }
        for (key, want) in [("replay", "consistent"), ("verdict", "consistent")] {
            let got = run
                .at(&["checker", key])
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{at}.checker: missing {key}"))?;
            if got != want {
                return Err(format!("{at}.checker: {key} is {got:?}"));
            }
        }
    }

    // ---- probes and gates ----
    for key in ["misclassification_rejected", "swap_probes_hold"] {
        if doc.at(&["probes", key]) != Some(&Json::Bool(true)) {
            return Err(format!("commute.probes: {key} is not true — the oracle is a rubber stamp"));
        }
    }
    doc.at(&["gates", "speedup"])
        .and_then(Json::as_f64)
        .filter(|v| *v > 0.0)
        .ok_or("commute.gates: speedup missing or non-positive")?;
    for key in [
        "speedup_ok",
        "zero_lock_traffic",
        "blocked_ns_zero",
        "oracle",
        "misclassification_rejected",
        "swap_probes",
    ] {
        if doc.at(&["gates", key]) != Some(&Json::Bool(true)) {
            return Err(format!("commute.gates: {key} is not true"));
        }
    }
    let verdict = doc
        .get("verdict")
        .and_then(Json::as_str)
        .ok_or("commute: missing verdict")?;
    if verdict != "consistent" {
        return Err(format!("commute: verdict is {verdict:?}"));
    }

    // ---- embedded timeline (elided leg) ----
    check_timeline(doc, "commute")?;
    Ok(())
}

/// Validates a `dps-recovery-report-v1` document (from `recovery
/// --json`) — the crash-recovery gate.
fn check_recovery(doc: &Json) -> Result<(), String> {
    doc.get("seed").and_then(Json::as_u64).ok_or("recovery: missing seed")?;
    doc.get("workers")
        .and_then(Json::as_u64)
        .filter(|w| *w > 0)
        .ok_or("recovery: missing or zero workers")?;

    // ---- kill-point sweep runs ----
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("recovery: missing runs array")?;
    if runs.is_empty() {
        return Err("recovery: runs is empty".into());
    }
    for (i, run) in runs.iter().enumerate() {
        let at = format!("recovery.runs[{i}]");
        run.get("workload")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{at}: missing workload"))?;
        let policy = run
            .get("policy")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{at}: missing policy"))?;
        if !matches!(policy, "abort_readers" | "revalidate" | "mvcc_snapshot") {
            return Err(format!("{at}: unknown policy {policy:?}"));
        }
        let site = run
            .get("kill_site")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{at}: missing kill_site"))?;
        if !matches!(site, "after_publish" | "torn_tail" | "after_sync") {
            return Err(format!("{at}: unknown kill_site {site:?}"));
        }
        let mut vals = Vec::new();
        for key in [
            "kill_commit",
            "commits",
            "expected_commits",
            "durable_seq",
            "checkpoint_seq",
            "replayed",
        ] {
            vals.push(
                run.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{at}: missing {key}"))?,
            );
        }
        let (kill, commits, expected, durable, ckpt, replayed) =
            (vals[0], vals[1], vals[2], vals[3], vals[4], vals[5]);
        if commits != expected {
            return Err(format!(
                "{at}: drained {commits}/{expected} — the in-memory run must finish"
            ));
        }
        // The durable horizon must sit where the kill site puts it:
        // strictly before the killed commit for dropped/torn tails, at
        // it when the death came after the fsync. And it must be the
        // checkpoint base plus the records actually replayed.
        match site {
            "after_sync" => {
                if durable != kill {
                    return Err(format!(
                        "{at}: died after fsync but durable_seq {durable} != kill {kill}"
                    ));
                }
            }
            _ => {
                if durable >= kill {
                    return Err(format!(
                        "{at}: durable_seq {durable} at/past the killed commit {kill}"
                    ));
                }
            }
        }
        if site == "torn_tail" && run.get("torn_tail") != Some(&Json::Bool(true)) {
            return Err(format!("{at}: torn-tail kill but no torn tail was truncated"));
        }
        if ckpt + replayed != durable {
            return Err(format!(
                "{at}: checkpoint {ckpt} + {replayed} redo != durable horizon {durable}"
            ));
        }
        for key in ["recovered", "site_ok", "prefix_oracle", "resumed"] {
            if run.get(key) != Some(&Json::Bool(true)) {
                return Err(format!("{at}: {key} is not true"));
            }
        }
        let verdict = run
            .get("verdict")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{at}: missing verdict"))?;
        if verdict != "consistent" {
            return Err(format!("{at}: verdict is {verdict:?}"));
        }
    }

    // ---- falsifiability probe ----
    if doc.at(&["probe", "corrupt_record_rejected"]) != Some(&Json::Bool(true)) {
        return Err(
            "recovery.probe: the corrupted mid-log record was not rejected — the \
             torn-tail rule is forgiving damage it must not"
                .into(),
        );
    }

    // ---- group-commit overhead A/B ----
    let at = "recovery.overhead";
    doc.at(&["overhead", "commits"])
        .and_then(Json::as_u64)
        .filter(|c| *c > 0)
        .ok_or_else(|| format!("{at}: missing or zero commits"))?;
    for key in ["off_secs", "on_secs", "off_throughput", "on_throughput"] {
        doc.at(&["overhead", key])
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("{at}: missing or non-positive {key}"))?;
    }
    let ratio = doc
        .at(&["overhead", "ratio"])
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite() && *v > 0.0)
        .ok_or_else(|| format!("{at}: missing ratio"))?;
    if ratio > 1.25 {
        return Err(format!("{at}: durability-on ratio {ratio:.3} exceeds the 1.25 budget"));
    }
    let wal = |key: &str| -> Result<u64, String> {
        doc.at(&["overhead", "wal", key])
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{at}.wal: missing {key}"))
    };
    let appends = wal("appends")?;
    let fsyncs = wal("fsyncs")?;
    let piggybacked = wal("piggybacked")?;
    wal("synced_records")?;
    wal("checkpoints")?;
    wal("bytes_written")?;
    if appends == 0 {
        return Err(format!("{at}.wal: zero appends on the durability leg"));
    }
    if fsyncs >= appends {
        return Err(format!(
            "{at}.wal: {fsyncs} fsyncs for {appends} appends — group commit is not grouping"
        ));
    }
    if piggybacked == 0 {
        return Err(format!("{at}.wal: zero piggybacked syncs at workers > 1"));
    }

    // ---- gates and verdict ----
    for key in [
        "all_recovered",
        "sites_consistent",
        "prefix_oracle",
        "resume_drains",
        "probe_rejected",
        "overhead_ok",
    ] {
        if doc.at(&["gates", key]) != Some(&Json::Bool(true)) {
            return Err(format!("recovery.gates: {key} is not true"));
        }
    }
    let verdict = doc
        .get("verdict")
        .and_then(Json::as_str)
        .ok_or("recovery: missing verdict")?;
    if verdict != "consistent" {
        return Err(format!("recovery: verdict is {verdict:?}"));
    }

    // ---- embedded timeline (durable overhead leg) ----
    check_timeline(doc, "recovery")?;
    Ok(())
}

/// Validates a `dps-server-report-v1` document (the `loadgen` gate).
fn check_server(doc: &Json) -> Result<(), String> {
    // ---- workload block ----
    for key in ["sessions", "chaos_sessions", "txns_per_session", "keys", "workers"] {
        doc.at(&["workload", key])
            .and_then(Json::as_u64)
            .filter(|v| *v > 0)
            .ok_or_else(|| format!("server.workload: missing or zero {key}"))?;
    }
    doc.at(&["workload", "name"])
        .and_then(Json::as_str)
        .ok_or("server.workload: missing name")?;
    doc.get("capacity_tps")
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite() && *v > 0.0)
        .ok_or("server: missing or non-positive capacity_tps")?;

    // ---- legs (overload sweep + the chaos leg) ----
    let legs = doc
        .get("legs")
        .and_then(Json::as_arr)
        .ok_or("server: missing legs array")?;
    if legs.is_empty() {
        return Err("server: legs is empty".into());
    }
    let chaos = doc.get("chaos_leg").ok_or("server: missing chaos_leg")?;
    let all: Vec<(String, &Json)> = legs
        .iter()
        .enumerate()
        .map(|(i, l)| (format!("server.legs[{i}]"), l))
        .chain(std::iter::once(("server.chaos_leg".to_string(), chaos)))
        .collect();
    for (at, leg) in &all {
        let field = |key: &str| -> Result<u64, String> {
            leg.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{at}: missing {key}"))
        };
        let (offered, committed) = (field("offered")?, field("committed")?);
        let (shed, aborted, failed) = (field("shed_txns")?, field("aborted")?, field("failed")?);
        // Client-side cause sum: every offered transaction resolved
        // exactly one way.
        if committed + shed + aborted + failed != offered {
            return Err(format!(
                "{at}: {committed} committed + {shed} shed + {aborted} aborted + \
                 {failed} failed != {offered} offered"
            ));
        }
        leg.get("secs")
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("{at}: missing or non-positive secs"))?;
        leg.get("goodput_tps")
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite() && *v >= 0.0)
            .ok_or_else(|| format!("{at}: missing goodput_tps"))?;
        // Percentiles must be ordered whenever anything committed.
        if committed > 0 {
            let lat = |key: &str| -> Result<u64, String> {
                leg.at(&["latency_us", key])
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{at}.latency_us: missing {key}"))
            };
            let (p50, p99, p999, max) = (lat("p50")?, lat("p99")?, lat("p999")?, lat("max")?);
            if !(p50 <= p99 && p99 <= p999 && p999 <= max) {
                return Err(format!(
                    "{at}.latency_us: percentiles not ordered: {p50}/{p99}/{p999}/{max}"
                ));
            }
        }
        // Server-side cause sum: every admitted transaction resolved
        // exactly once, and the typed shed/timeout/disconnect causes
        // stay within their totals.
        let srv = |key: &str| -> Result<u64, String> {
            leg.at(&["server", key])
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{at}.server: missing {key}"))
        };
        let (admitted, s_commits, s_aborts) = (srv("admitted")?, srv("commits")?, srv("aborts")?);
        if admitted != s_commits + s_aborts {
            return Err(format!(
                "{at}.server: {admitted} admitted != {s_commits} commits + {s_aborts} aborts"
            ));
        }
        if committed != s_commits {
            return Err(format!(
                "{at}: client committed {committed} != server commits {s_commits}"
            ));
        }
        let (timeouts, disconnects) = (srv("timeouts")?, srv("disconnects")?);
        if timeouts + disconnects > s_aborts {
            return Err(format!(
                "{at}.server: {timeouts} timeouts + {disconnects} disconnects exceed \
                 {s_aborts} aborts"
            ));
        }
        let shed_causes = srv("shed_rate")? + srv("shed_inflight")? + srv("shed_storm")?;
        // Per-session reconciliation: the session counters must sum to
        // the globals — a session whose books vanish on disconnect
        // would hide a leaked transaction.
        let sessions = leg
            .get("per_session")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{at}: missing per_session"))?;
        let mut sums = [0u64; 5]; // commits, aborts, shed, timeouts, disconnects
        for (j, s) in sessions.iter().enumerate() {
            for (k, key) in ["commits", "aborts", "shed", "timeouts", "disconnects"]
                .iter()
                .enumerate()
            {
                sums[k] += s
                    .get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{at}.per_session[{j}]: missing {key}"))?;
            }
        }
        let expect = [s_commits, s_aborts, shed_causes, timeouts, disconnects];
        for (k, key) in ["commits", "aborts", "shed", "timeouts", "disconnects"]
            .iter()
            .enumerate()
        {
            if sums[k] != expect[k] {
                return Err(format!(
                    "{at}: per-session {key} sum {} != global {}",
                    sums[k], expect[k]
                ));
            }
        }
        // Leak probes and the §3 oracle, per leg.
        for key in ["held_locks", "snapshot_pins"] {
            let v = leg
                .at(&["engine", key])
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{at}.engine: missing {key}"))?;
            if v != 0 {
                return Err(format!("{at}.engine: {v} leaked {key} after drain"));
            }
        }
        let replay = leg
            .get("replay")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{at}: missing replay"))?;
        if replay != "consistent" {
            return Err(format!("{at}: replay is {replay:?}"));
        }
        if leg.get("reconciled") != Some(&Json::Bool(true)) {
            return Err(format!("{at}: reconciled is not true"));
        }
    }

    // ---- the disconnect-chaos leg must have actually disconnected ----
    let disc = chaos
        .at(&["server", "disconnects"])
        .and_then(Json::as_u64)
        .ok_or("server.chaos_leg.server: missing disconnects")?;
    if disc == 0 {
        return Err("server.chaos_leg: zero injected disconnects — the chaos plan never fired".into());
    }

    // ---- gates and verdict ----
    for key in [
        "oracle",
        "shed_p99_improved",
        "goodput_maintained",
        "disconnects_min",
        "disconnect_leaks_zero",
    ] {
        if doc.at(&["gates", key]) != Some(&Json::Bool(true)) {
            return Err(format!("server.gates: {key} is not true"));
        }
    }
    let verdict = doc
        .get("verdict")
        .and_then(Json::as_str)
        .ok_or("server: missing verdict")?;
    if verdict != "consistent" {
        return Err(format!("server: verdict is {verdict:?}"));
    }

    // ---- embedded timeline (the 2x shed-on leg) ----
    check_timeline(doc, "server")?;
    Ok(())
}

fn check(doc: &Json) -> Result<(), String> {
    let need_str = |path: &[&str]| -> Result<String, String> {
        doc.at(path)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("missing string at {}", path.join(".")))
    };
    let need_u64 = |path: &[&str]| -> Result<u64, String> {
        doc.at(path)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing integer at {}", path.join(".")))
    };

    // ---- envelope (dispatch on the schema tag) ----
    let schema = need_str(&["schema"])?;
    if schema == "dps-analysis-report-v1" {
        // Standalone analysis document (from `analyze --json`).
        return check_analysis(doc, "doc");
    }
    if schema == "dps-chaos-report-v1" {
        // Chaos-gate document (from `chaos --json`).
        return check_chaos(doc);
    }
    if schema == "dps-match-report-v1" {
        // Sharded-match-pipeline document (from `matchbench --json`).
        return check_match(doc);
    }
    if schema == "dps-mvcc-report-v1" {
        // Abort-free `R_c` gate document (from `mvcc --json`).
        return check_mvcc(doc);
    }
    if schema == "dps-commute-report-v1" {
        // Coordination-avoidance gate document (from `commute --json`).
        return check_commute(doc);
    }
    if schema == "dps-recovery-report-v1" {
        // Crash-recovery gate document (from `recovery --json`).
        return check_recovery(doc);
    }
    if schema == "dps-server-report-v1" {
        // Multi-session front-door gate document (from `loadgen --json`).
        return check_server(doc);
    }
    if schema != "dps-scaling-report-v1" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let check_rows = |sweep: &str, arr: &[Json]| -> Result<(), String> {
        if arr.is_empty() {
            return Err(format!("sweeps.{sweep} is empty"));
        }
        for (i, s) in arr.iter().enumerate() {
            for key in ["workers", "commits", "aborts"] {
                s.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("sweeps.{sweep}[{i}].{key} missing"))?;
            }
            s.get("secs")
                .and_then(Json::as_f64)
                .filter(|v| *v > 0.0)
                .ok_or_else(|| format!("sweeps.{sweep}[{i}].secs missing or non-positive"))?;
        }
        Ok(())
    };
    for sweep in ["partitioned", "partitioned_1shard", "contended"] {
        let arr = doc
            .at(&["sweeps", sweep])
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("missing sweeps.{sweep}"))?;
        check_rows(sweep, arr)?;
    }
    // "match_heavy" joined the sweeps with the sharded match pipeline;
    // reports written before it carry no key (old shape still passes).
    if let Some(arr) = doc.at(&["sweeps", "match_heavy"]).and_then(Json::as_arr) {
        check_rows("match_heavy", arr)?;
    }

    // ---- embedded obs report ----
    let obs_schema = need_str(&["observability", "schema"])?;
    if obs_schema != "dps-obs-report-v1" {
        return Err(format!("unexpected observability schema {obs_schema:?}"));
    }
    for phase in ["lock_wait", "lhs_eval", "rhs_act", "commit"] {
        let mut vals = Vec::new();
        for key in ["count", "p50_ns", "p95_ns", "p99_ns", "max_ns"] {
            vals.push(need_u64(&["observability", "phases", phase, key])?);
        }
        let (p50, p95, p99, max) = (vals[1], vals[2], vals[3], vals[4]);
        if !(p50 <= p95 && p95 <= p99 && p99 <= max) {
            return Err(format!(
                "phases.{phase}: percentiles not ordered ({p50} / {p95} / {p99} / max {max})"
            ));
        }
    }
    // The contended workload must actually have exercised the commit
    // path, and every recorded Block must have produced exactly one
    // lock-wait sample (blocking is *rare* under Rc/Ra/Wa — that is the
    // protocol's point — so the count may legitimately be small).
    if need_u64(&["observability", "phases", "commit", "count"])? == 0 {
        return Err("phases.commit.count is 0 on the contended run".into());
    }
    let lock_waits = need_u64(&["observability", "phases", "lock_wait", "count"])?;
    let blocks = need_u64(&["observability", "events", "blocks"])?;
    if lock_waits != blocks {
        return Err(format!(
            "lock_wait samples ({lock_waits}) disagree with Block events ({blocks})"
        ));
    }

    // ---- abort accounting ----
    let causes = ["doomed", "deadlock", "stale", "revalidation", "eval_error", "timeout"];
    let mut cause_sum = 0;
    for cause in causes {
        cause_sum += need_u64(&["observability", "abort_causes", cause])?;
    }
    // "injected" joined the taxonomy with the chaos layer and
    // "snapshot_stale" with the MVCC read path; reports written before
    // them carry no key, which reads as zero (and a fault-free,
    // lock-based scaling run must report zero for both anyway).
    for newer in ["injected", "snapshot_stale"] {
        cause_sum += doc
            .at(&["observability", "abort_causes", newer])
            .and_then(Json::as_u64)
            .unwrap_or(0);
    }
    let aborts = need_u64(&["observability", "events", "aborts"])?;
    if cause_sum != aborts {
        return Err(format!(
            "abort causes sum to {cause_sum} but events.aborts is {aborts}"
        ));
    }
    if need_u64(&["observability", "events", "anomalies"])? != 0 {
        return Err("events.anomalies is non-zero".into());
    }

    // ---- overhead budget ----
    let ratio = doc
        .at(&["obs_overhead", "ratio"])
        .and_then(Json::as_f64)
        .ok_or("missing obs_overhead.ratio")?;
    if !(ratio.is_finite() && ratio < 1.05) {
        return Err(format!("obs overhead ratio {ratio:.4} exceeds the 1.05 budget"));
    }

    // ---- telemetry budget + timeline ----
    // Both joined the report with the live-telemetry layer; reports
    // written before it carry neither key (old shape still passes).
    if let Some(ratio) = doc.at(&["telemetry_overhead", "ratio"]).and_then(Json::as_f64) {
        if !(ratio.is_finite() && ratio < 1.05) {
            return Err(format!(
                "telemetry overhead ratio {ratio:.4} exceeds the 1.05 budget"
            ));
        }
    }
    check_timeline(doc, "scaling")?;

    // ---- embedded analysis document ----
    // Reports written before the analysis layer existed don't carry the
    // key; those still pass (old shape). When present it must be valid.
    if let Some(analysis) = doc.get("analysis") {
        check_analysis(analysis, "analysis")?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let arg = std::env::args().nth(1);
    let text = match arg.as_deref() {
        Some("-") | None => {
            let mut s = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut s) {
                eprintln!("obs_check: reading stdin: {e}");
                return ExitCode::FAILURE;
            }
            s
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("obs_check: reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let doc = match json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("obs_check: JSON parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&doc) {
        Ok(()) => {
            println!("obs_check: report OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_check: {e}");
            ExitCode::FAILURE
        }
    }
}
