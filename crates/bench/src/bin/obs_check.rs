//! Shape-checks a `dps-scaling-report-v1` JSON document (as emitted by
//! `scaling --json`), so CI can validate the observability pipeline
//! end-to-end without `serde` or external tooling.
//!
//! Usage: `obs_check <report.json>` (or `-` / no argument for stdin).
//! Exit 0 if the document is well-formed, 1 with a diagnostic otherwise.
//!
//! Checks:
//! * top-level schema tag and sweep arrays;
//! * the embedded `dps-obs-report-v1` document: every phase histogram
//!   has `count`/`p50_ns`/`p95_ns`/`p99_ns`/`max_ns`, with ordered
//!   percentiles;
//! * every abort cause is present and the per-cause counts sum to the
//!   event-counter abort total;
//! * zero recorded anomalies;
//! * the measured observe-ON/OFF ratio is below the 5% budget.

use std::io::Read;
use std::process::ExitCode;

use dps_obs::json::{self, Json};

fn check(doc: &Json) -> Result<(), String> {
    let need_str = |path: &[&str]| -> Result<String, String> {
        doc.at(path)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("missing string at {}", path.join(".")))
    };
    let need_u64 = |path: &[&str]| -> Result<u64, String> {
        doc.at(path)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing integer at {}", path.join(".")))
    };

    // ---- envelope ----
    let schema = need_str(&["schema"])?;
    if schema != "dps-scaling-report-v1" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    for sweep in ["partitioned", "partitioned_1shard", "contended"] {
        let arr = doc
            .at(&["sweeps", sweep])
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("missing sweeps.{sweep}"))?;
        if arr.is_empty() {
            return Err(format!("sweeps.{sweep} is empty"));
        }
        for (i, s) in arr.iter().enumerate() {
            for key in ["workers", "commits", "aborts"] {
                s.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("sweeps.{sweep}[{i}].{key} missing"))?;
            }
            s.get("secs")
                .and_then(Json::as_f64)
                .filter(|v| *v > 0.0)
                .ok_or_else(|| format!("sweeps.{sweep}[{i}].secs missing or non-positive"))?;
        }
    }

    // ---- embedded obs report ----
    let obs_schema = need_str(&["observability", "schema"])?;
    if obs_schema != "dps-obs-report-v1" {
        return Err(format!("unexpected observability schema {obs_schema:?}"));
    }
    for phase in ["lock_wait", "lhs_eval", "rhs_act", "commit"] {
        let mut vals = Vec::new();
        for key in ["count", "p50_ns", "p95_ns", "p99_ns", "max_ns"] {
            vals.push(need_u64(&["observability", "phases", phase, key])?);
        }
        let (p50, p95, p99, max) = (vals[1], vals[2], vals[3], vals[4]);
        if !(p50 <= p95 && p95 <= p99 && p99 <= max) {
            return Err(format!(
                "phases.{phase}: percentiles not ordered ({p50} / {p95} / {p99} / max {max})"
            ));
        }
    }
    // The contended workload must actually have exercised the commit
    // path, and every recorded Block must have produced exactly one
    // lock-wait sample (blocking is *rare* under Rc/Ra/Wa — that is the
    // protocol's point — so the count may legitimately be small).
    if need_u64(&["observability", "phases", "commit", "count"])? == 0 {
        return Err("phases.commit.count is 0 on the contended run".into());
    }
    let lock_waits = need_u64(&["observability", "phases", "lock_wait", "count"])?;
    let blocks = need_u64(&["observability", "events", "blocks"])?;
    if lock_waits != blocks {
        return Err(format!(
            "lock_wait samples ({lock_waits}) disagree with Block events ({blocks})"
        ));
    }

    // ---- abort accounting ----
    let causes = ["doomed", "deadlock", "stale", "revalidation", "eval_error", "timeout"];
    let mut cause_sum = 0;
    for cause in causes {
        cause_sum += need_u64(&["observability", "abort_causes", cause])?;
    }
    let aborts = need_u64(&["observability", "events", "aborts"])?;
    if cause_sum != aborts {
        return Err(format!(
            "abort causes sum to {cause_sum} but events.aborts is {aborts}"
        ));
    }
    if need_u64(&["observability", "events", "anomalies"])? != 0 {
        return Err("events.anomalies is non-zero".into());
    }

    // ---- overhead budget ----
    let ratio = doc
        .at(&["obs_overhead", "ratio"])
        .and_then(Json::as_f64)
        .ok_or("missing obs_overhead.ratio")?;
    if !(ratio.is_finite() && ratio < 1.05) {
        return Err(format!("obs overhead ratio {ratio:.4} exceeds the 1.05 budget"));
    }
    Ok(())
}

fn main() -> ExitCode {
    let arg = std::env::args().nth(1);
    let text = match arg.as_deref() {
        Some("-") | None => {
            let mut s = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut s) {
                eprintln!("obs_check: reading stdin: {e}");
                return ExitCode::FAILURE;
            }
            s
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("obs_check: reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let doc = match json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("obs_check: JSON parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&doc) {
        Ok(()) => {
            println!("obs_check: report OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_check: {e}");
            ExitCode::FAILURE
        }
    }
}
