//! Worker-count scalability sweep for the dynamic parallel engine.
//!
//! Measures wall-clock throughput (commits/second) at 1, 2, 4 and 8
//! workers on two workloads:
//!
//! * **partitioned** — `shared_resources(tasks, tasks)`: every task
//!   charges its own tally, so transactions never conflict. This is the
//!   workload where the sharded lock table and the split engine state
//!   must show monotonic speed-up: with a global `Mutex<State>` in the
//!   lock manager and a global `Mutex<Shared>` in the engine, adding
//!   workers buys nothing because every lock/commit serialises on the
//!   same two mutexes.
//! * **contended** — `shared_resources(tasks, 1)`: a single hot tally.
//!   Parallelism is capped by the application's own data conflict
//!   (aborts/retries dominate), so flat-to-falling scaling is expected
//!   and correct.
//!
//! Every run's trace is checked with `semantics::validate_trace` — the
//! Theorem 2 oracle — so the numbers below are for *semantically
//! consistent* executions only.
//!
//! RHS cost is simulated (`WorkModel::FixedMicros`) so that the measured
//! quantity is the paper's regime — RHS execution dominated by real work,
//! with locking overhead at the margin — rather than pure lock-manager
//! round-trips. Run with `--quick` for a faster, noisier sweep.

use std::time::Instant;

use dps_bench::workloads;
use dps_core::semantics::validate_trace;
use dps_core::{ParallelConfig, ParallelEngine, WorkModel};
use dps_lock::{ConflictPolicy, Protocol};

struct Sample {
    workers: usize,
    commits: usize,
    secs: f64,
    aborts: u64,
}

fn run_sweep(
    label: &str,
    tasks: usize,
    resources: usize,
    work_us: u64,
    reps: usize,
    lock_shards: usize,
) -> Vec<Sample> {
    let mut out = Vec::new();
    for &workers in &[1usize, 2, 4, 8] {
        let mut best: Option<Sample> = None;
        for _ in 0..reps {
            let (rules, wm) = workloads::shared_resources(tasks, resources);
            let initial = wm.clone();
            let mut engine = ParallelEngine::new(
                &rules,
                wm,
                ParallelConfig {
                    protocol: Protocol::RcRaWa,
                    policy: ConflictPolicy::AbortReaders,
                    workers,
                    work: WorkModel::FixedMicros(work_us),
                    lock_shards,
                    ..Default::default()
                },
            );
            let t0 = Instant::now();
            let report = engine.run();
            let secs = t0.elapsed().as_secs_f64();
            assert_eq!(report.commits, tasks, "{label}: lost commits");
            validate_trace(&rules, &initial, &report.trace)
                .expect("trace must replay single-threadedly (Theorem 2)");
            let aborts = report.aborts.doomed
                + report.aborts.deadlock
                + report.aborts.stale
                + report.aborts.revalidation;
            let s = Sample {
                workers,
                commits: report.commits,
                secs,
                aborts,
            };
            if best.as_ref().is_none_or(|b| s.secs < b.secs) {
                best = Some(s);
            }
        }
        out.push(best.expect("reps >= 1"));
    }
    out
}

fn print_sweep(label: &str, samples: &[Sample]) {
    println!("\n{label}");
    println!("{:>8} {:>10} {:>12} {:>10} {:>8}", "workers", "commits", "commits/s", "time", "aborts");
    let base = samples[0].commits as f64 / samples[0].secs;
    for s in samples {
        let rate = s.commits as f64 / s.secs;
        println!(
            "{:>8} {:>10} {:>12.0} {:>9.1}ms {:>8}   ({:.2}x)",
            s.workers,
            s.commits,
            rate,
            s.secs * 1e3,
            s.aborts,
            rate / base
        );
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (tasks, mut work_us, reps) = if quick { (64, 100, 1) } else { (192, 200, 3) };
    // Override the simulated RHS cost (µs). `DPS_SCALING_WORK_US=0` makes
    // the run lock-bound, isolating the lock-table + engine-state overhead
    // that the sharding/splitting refactor targets.
    if let Some(us) = std::env::var("DPS_SCALING_WORK_US")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        work_us = us;
    }

    println!("Worker-count scalability sweep (RcRaWa / AbortReaders,");
    println!("simulated RHS cost {work_us} µs, best of {reps} rep(s), {tasks} tasks)");

    let shards = dps_lock::DEFAULT_SHARDS;
    let partitioned = run_sweep("partitioned", tasks, tasks, work_us, reps, shards);
    print_sweep(
        &format!("partitioned (resources = tasks = {tasks}; zero data conflict; {shards} lock shards)"),
        &partitioned,
    );

    let single_shard = run_sweep("partitioned-1shard", tasks, tasks, work_us, reps, 1);
    print_sweep(
        "partitioned, 1 lock shard (the pre-sharding centralised table)",
        &single_shard,
    );

    let contended = run_sweep("contended", tasks, 1, work_us, reps, shards);
    print_sweep(
        "contended (resources = 1; every RHS writes the same tally)",
        &contended,
    );

    // The acceptance gate: monotonic 1 → 4 improvement on the
    // partitioned workload.
    let rate = |s: &Sample| s.commits as f64 / s.secs;
    let r1 = rate(&partitioned[0]);
    let r2 = rate(&partitioned[1]);
    let r4 = rate(&partitioned[2]);
    println!(
        "\npartitioned speed-up: 1w → 2w: {:.2}x, 2w → 4w: {:.2}x",
        r2 / r1,
        r4 / r2
    );
    if r1 < r2 && r2 < r4 {
        println!("PASS: throughput is monotonic over 1 → 2 → 4 workers");
    } else {
        println!("WARN: non-monotonic scaling (noisy machine?) — rerun without --quick");
        std::process::exit(1);
    }
}
