//! Worker-count scalability sweep for the dynamic parallel engine.
//!
//! Measures wall-clock throughput (commits/second) at 1, 2, 4 and 8
//! workers on two workloads:
//!
//! * **partitioned** — `shared_resources(tasks, tasks)`: every task
//!   charges its own tally, so transactions never conflict. This is the
//!   workload where the sharded lock table and the split engine state
//!   must show monotonic speed-up: with a global `Mutex<State>` in the
//!   lock manager and a global `Mutex<Shared>` in the engine, adding
//!   workers buys nothing because every lock/commit serialises on the
//!   same two mutexes.
//! * **contended** — `shared_resources(tasks, 1)`: a single hot tally.
//!   Parallelism is capped by the application's own data conflict
//!   (aborts/retries dominate), so flat-to-falling scaling is expected
//!   and correct.
//!
//! Every run's trace is checked with `semantics::validate_trace` — the
//! Theorem 2 oracle — so the numbers below are for *semantically
//! consistent* executions only.
//!
//! RHS cost is simulated (`WorkModel::FixedMicros`) so that the measured
//! quantity is the paper's regime — RHS execution dominated by real work,
//! with locking overhead at the margin — rather than pure lock-manager
//! round-trips. Run with `--quick` for a faster, noisier sweep.
//!
//! ## Observability (`--json`)
//!
//! With `--json` the sweep additionally runs the contended workload once
//! more with [`ParallelConfig::observe`] on and emits a machine-readable
//! report to **stdout** (all human-readable tables move to stderr):
//! schema `dps-scaling-report-v1`, embedding the full `dps-obs-report-v1`
//! document (lock-wait/commit latency percentiles, per-cause abort
//! breakdown, per-rule table) plus the sweep samples, the measured
//! observability overhead, and a `dps-analysis-report-v1` document for
//! the instrumented run (per-resource contention attribution, critical
//! path / wasted-work `f`, and the §3-Theorem-2 checker verdict). CI
//! shape-checks all of it with the `obs_check` binary. `--bench-out
//! PATH` additionally snapshots the document to a file.
//!
//! Three gates (exit 1 on failure):
//! * throughput is monotonic over 1 → 2 → 4 workers (partitioned);
//! * the observe-ON 4-worker partitioned run costs < 5% over observe-OFF
//!   (so the observe-OFF instrumentation — one branch per site — is
//!   certainly below the 5% budget too);
//! * the live-telemetry sampler (`ParallelConfig::telemetry`, 10 ms
//!   tick) costs < 5% on `match_heavy` at 8 workers. The telemetry-ON
//!   run's sampled series are embedded in the JSON report as a
//!   `dps-timeline-v1` document under the `timeline` key.

use std::time::Instant;

use dps_bench::analysis::{analysis_document, analyzed_run};
use dps_bench::harness::ReportArgs;
use dps_bench::workloads;
use dps_core::semantics::validate_trace;
use dps_core::{ParallelConfig, ParallelEngine, ParallelReport, WorkModel};
use dps_lock::{ConflictPolicy, Protocol};
use dps_obs::json::Json;
use dps_obs::{ObsReport, Phase, TelemetryConfig, TimelineDoc};

struct Sample {
    workers: usize,
    commits: usize,
    secs: f64,
    aborts: u64,
}

fn config(workers: usize, work_us: u64, lock_shards: usize, observe: bool) -> ParallelConfig {
    ParallelConfig {
        protocol: Protocol::RcRaWa,
        policy: ConflictPolicy::AbortReaders,
        workers,
        work: WorkModel::FixedMicros(work_us),
        lock_shards,
        observe,
        // Ctrl-C / SIGTERM exits through the graceful drain.
        stop: dps_server::shutdown::installed(),
        ..Default::default()
    }
}

/// One timed, trace-validated run; returns `(report, secs)`.
fn one_run(
    label: &str,
    tasks: usize,
    resources: usize,
    cfg: ParallelConfig,
) -> (ParallelReport, f64, ParallelEngine) {
    let (rules, wm) = workloads::shared_resources(tasks, resources);
    let initial = wm.clone();
    let mut engine = ParallelEngine::new(&rules, wm, cfg);
    let t0 = Instant::now();
    let report = engine.run();
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(report.commits, tasks, "{label}: lost commits");
    validate_trace(&rules, &initial, &report.trace)
        .expect("trace must replay single-threadedly (Theorem 2)");
    (report, secs, engine)
}

fn run_sweep(
    label: &str,
    tasks: usize,
    resources: usize,
    work_us: u64,
    reps: usize,
    lock_shards: usize,
) -> Vec<Sample> {
    let mut out = Vec::new();
    for &workers in &[1usize, 2, 4, 8] {
        let mut best: Option<Sample> = None;
        for _ in 0..reps {
            let (report, secs, _) = one_run(
                label,
                tasks,
                resources,
                config(workers, work_us, lock_shards, false),
            );
            let s = Sample {
                workers,
                commits: report.commits,
                secs,
                aborts: report.aborts.total(),
            };
            if best.as_ref().is_none_or(|b| s.secs < b.secs) {
                best = Some(s);
            }
        }
        out.push(best.expect("reps >= 1"));
    }
    out
}

/// One trace-validated `match_heavy` run, optionally with the live
/// telemetry sampler attached; returns the wall-clock seconds and the
/// sampled timeline (when telemetry was on).
fn match_heavy_run(
    groups: usize,
    pairs: usize,
    workers: usize,
    telemetry: bool,
) -> (f64, u64, Option<TimelineDoc>) {
    let (rules, wm) = workloads::match_heavy(groups, pairs);
    let initial = wm.clone();
    let cfg = ParallelConfig {
        workers,
        telemetry: telemetry.then(TelemetryConfig::default),
        ..Default::default()
    };
    let mut engine = ParallelEngine::new(&rules, wm, cfg);
    let t0 = Instant::now();
    let report = engine.run();
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(report.commits, groups * pairs, "match-heavy: lost commits");
    validate_trace(&rules, &initial, &report.trace)
        .expect("trace must replay single-threadedly (Theorem 2)");
    let aborts = report.aborts.total();
    (secs, aborts, engine.telemetry().map(|t| t.doc()))
}

/// The match-bound sweep: `match_heavy` under the default shard plan,
/// trace-validated like every other run.
fn run_match_heavy_sweep(groups: usize, pairs: usize, reps: usize) -> Vec<Sample> {
    let mut out = Vec::new();
    for &workers in &[1usize, 2, 4, 8] {
        let mut best: Option<Sample> = None;
        for _ in 0..reps {
            let (secs, aborts, _) = match_heavy_run(groups, pairs, workers, false);
            let s = Sample {
                workers,
                commits: groups * pairs,
                secs,
                aborts,
            };
            if best.as_ref().is_none_or(|b| s.secs < b.secs) {
                best = Some(s);
            }
        }
        out.push(best.expect("reps >= 1"));
    }
    out
}

fn print_sweep(label: &str, samples: &[Sample]) {
    eprintln!("\n{label}");
    eprintln!(
        "{:>8} {:>10} {:>12} {:>10} {:>8}",
        "workers", "commits", "commits/s", "time", "aborts"
    );
    let base = samples[0].commits as f64 / samples[0].secs;
    for s in samples {
        let rate = s.commits as f64 / s.secs;
        eprintln!(
            "{:>8} {:>10} {:>12.0} {:>9.1}ms {:>8}   ({:.2}x)",
            s.workers,
            s.commits,
            rate,
            s.secs * 1e3,
            s.aborts,
            rate / base
        );
    }
}

fn sweep_json(samples: &[Sample]) -> Json {
    Json::Arr(
        samples
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("workers".into(), Json::u64(s.workers as u64)),
                    ("commits".into(), Json::u64(s.commits as u64)),
                    ("secs".into(), Json::num(s.secs)),
                    ("aborts".into(), Json::u64(s.aborts)),
                ])
            })
            .collect(),
    )
}

/// The instrumented contended run: returns the obs report (consistency-
/// checked against the engine's own counters) plus the embedded
/// `dps-analysis-report-v1` document (contention attribution, critical
/// path, wasted-work `f` and the Theorem-2 checker verdict) for JSON
/// embedding.
fn observed_contended(tasks: usize, work_us: u64) -> (ObsReport, Json) {
    let run = analyzed_run(Protocol::RcRaWa, 4, tasks, 1, work_us);
    let obs = run.obs.clone();
    // Internal consistency: the event stream must agree with the
    // engine's abort accounting (analyzed_run already validated the
    // merged history and replayed the trace through the §3 oracle).
    assert_eq!(
        obs.abort_cause_total(),
        run.aborts,
        "per-cause abort breakdown must sum to the engine's abort total"
    );
    assert_eq!(obs.anomalies, 0, "accounting anomalies in the event stream");
    assert_eq!(
        run.analysis.verdict(),
        dps_obs::Verdict::Consistent,
        "contended run's firing sequence must be a member of ES_single: {:?}",
        run.analysis.checker.structural_errors
    );
    eprintln!("\nobservability (contended, 4 workers):\n{obs}");
    run.print_human();
    let analysis = analysis_document(std::slice::from_ref(&run), 16);
    (obs, analysis)
}

fn main() {
    dps_server::shutdown::install();
    let args = ReportArgs::parse();
    let (quick, json) = (args.quick(), args.json());
    let (tasks, mut work_us, reps) = if quick { (64, 100, 1) } else { (192, 200, 3) };
    // Override the simulated RHS cost (µs). `DPS_SCALING_WORK_US=0` makes
    // the run lock-bound, isolating the lock-table + engine-state overhead
    // that the sharding/splitting refactor targets.
    if let Some(us) = std::env::var("DPS_SCALING_WORK_US")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        work_us = us;
    }

    eprintln!("Worker-count scalability sweep (RcRaWa / AbortReaders,");
    eprintln!("simulated RHS cost {work_us} µs, best of {reps} rep(s), {tasks} tasks)");

    let shards = dps_lock::DEFAULT_SHARDS;
    let partitioned = run_sweep("partitioned", tasks, tasks, work_us, reps, shards);
    print_sweep(
        &format!("partitioned (resources = tasks = {tasks}; zero data conflict; {shards} lock shards)"),
        &partitioned,
    );

    let single_shard = run_sweep("partitioned-1shard", tasks, tasks, work_us, reps, 1);
    print_sweep(
        "partitioned, 1 lock shard (the pre-sharding centralised table)",
        &single_shard,
    );

    let contended = run_sweep("contended", tasks, 1, work_us, reps, shards);
    print_sweep(
        "contended (resources = 1; every RHS writes the same tally)",
        &contended,
    );

    // match-heavy: zero data conflict but a large, long-lived conflict
    // set, so the measured quantity is the sharded match pipeline (claim
    // scans and Rete updates), not the lock table. No simulated RHS cost
    // — the workload is match-bound by construction.
    let (mh_groups, mh_pairs) = if quick { (16, 16) } else { (32, 32) };
    let match_heavy = run_match_heavy_sweep(mh_groups, mh_pairs, reps);
    print_sweep(
        &format!(
            "match-heavy (match_heavy({mh_groups}, {mh_pairs}); match-bound; {} match shards)",
            dps_match::DEFAULT_MATCH_SHARDS
        ),
        &match_heavy,
    );

    // Observability overhead: 4-worker partitioned, observe OFF vs ON,
    // best of `reps`. The OFF cost of the instrumentation (a branch on a
    // `None`) is strictly below the ON cost measured here.
    let best_of = |observe: bool| -> f64 {
        (0..reps)
            .map(|_| one_run("overhead", tasks, tasks, config(4, work_us, shards, observe)).1)
            .fold(f64::INFINITY, f64::min)
    };
    let off_secs = best_of(false);
    let on_secs = best_of(true);
    let overhead = on_secs / off_secs - 1.0;
    eprintln!(
        "\nobservability overhead (partitioned, 4 workers): off {:.1}ms, on {:.1}ms ({:+.2}%)",
        off_secs * 1e3,
        on_secs * 1e3,
        overhead * 1e2
    );

    // Live-telemetry overhead: match_heavy at 8 workers, sampler OFF vs
    // ON (default 10 ms tick), best of `tel_reps`. This A/B gets its own
    // larger instance: a 5% band needs a run long enough (~100 ms, not
    // ~20 ms) that sampler-thread spawn/join and timer granularity
    // don't dominate the ratio — and long enough to collect a
    // multi-tick timeline. The ON run's timeline is the
    // `dps-timeline-v1` document embedded in the report below.
    let (tel_groups, tel_pairs, tel_reps) = if quick {
        (mh_groups, mh_pairs, 1)
    } else {
        (64, 64, reps.max(5))
    };
    // Interleaved OFF/ON reps (after one untimed warm-up) so both legs
    // sample the same cache/frequency conditions — running all OFF
    // then all ON hands the second leg a warmer machine and biases the
    // ratio.
    let _ = match_heavy_run(tel_groups, tel_pairs, 8, false);
    let (mut tel_off_secs, mut tel_on_secs) = (f64::INFINITY, f64::INFINITY);
    let mut timeline = None;
    for _ in 0..tel_reps {
        let (off, _, _) = match_heavy_run(tel_groups, tel_pairs, 8, false);
        tel_off_secs = tel_off_secs.min(off);
        let (on, _, d) = match_heavy_run(tel_groups, tel_pairs, 8, true);
        if on < tel_on_secs {
            tel_on_secs = on;
            timeline = d;
        }
    }
    let timeline = timeline.expect("telemetry-on run produced a timeline");
    timeline
        .validate()
        .expect("sampled timeline must be internally consistent");
    let tel_overhead = tel_on_secs / tel_off_secs - 1.0;
    eprintln!(
        "telemetry overhead (match_heavy, 8 workers): off {:.1}ms, on {:.1}ms ({:+.2}%), {} ticks",
        tel_off_secs * 1e3,
        tel_on_secs * 1e3,
        tel_overhead * 1e2,
        timeline.ticks
    );

    let (obs, analysis) = observed_contended(tasks, work_us);

    {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str("dps-scaling-report-v1")),
            (
                "config".into(),
                Json::Obj(vec![
                    ("tasks".into(), Json::u64(tasks as u64)),
                    ("work_us".into(), Json::u64(work_us)),
                    ("reps".into(), Json::u64(reps as u64)),
                    ("lock_shards".into(), Json::u64(shards as u64)),
                ]),
            ),
            (
                "sweeps".into(),
                Json::Obj(vec![
                    ("partitioned".into(), sweep_json(&partitioned)),
                    ("partitioned_1shard".into(), sweep_json(&single_shard)),
                    ("contended".into(), sweep_json(&contended)),
                    ("match_heavy".into(), sweep_json(&match_heavy)),
                ]),
            ),
            (
                "obs_overhead".into(),
                Json::Obj(vec![
                    ("off_secs".into(), Json::num(off_secs)),
                    ("on_secs".into(), Json::num(on_secs)),
                    ("ratio".into(), Json::num(on_secs / off_secs)),
                ]),
            ),
            (
                "telemetry_overhead".into(),
                Json::Obj(vec![
                    ("off_secs".into(), Json::num(tel_off_secs)),
                    ("on_secs".into(), Json::num(tel_on_secs)),
                    ("ratio".into(), Json::num(tel_on_secs / tel_off_secs)),
                ]),
            ),
            ("observability".into(), obs.to_json()),
            ("analysis".into(), analysis),
            ("timeline".into(), timeline.to_json()),
        ]);
        if json {
            println!("{}", doc.to_string_pretty());
        } else {
            // Headline latency lines for the human report.
            for phase in [Phase::LockWait, Phase::Commit] {
                if let Some(h) = obs.phase(phase) {
                    eprintln!(
                        "contended {}: p50 {} ns, p95 {} ns, p99 {} ns over {} samples",
                        phase.name(),
                        h.p50(),
                        h.p95(),
                        h.p99(),
                        h.count
                    );
                }
            }
        }
        args.write_bench_out(&doc);
    }

    // Gate 1: monotonic 1 → 4 improvement on the partitioned workload.
    let rate = |s: &Sample| s.commits as f64 / s.secs;
    let r1 = rate(&partitioned[0]);
    let r2 = rate(&partitioned[1]);
    let r4 = rate(&partitioned[2]);
    eprintln!(
        "\npartitioned speed-up: 1w → 2w: {:.2}x, 2w → 4w: {:.2}x",
        r2 / r1,
        r4 / r2
    );
    let mut failed = false;
    if r1 < r2 && r2 < r4 {
        eprintln!("PASS: throughput is monotonic over 1 → 2 → 4 workers");
    } else {
        eprintln!("WARN: non-monotonic scaling (noisy machine?) — rerun without --quick");
        failed = true;
    }
    // Gate 2: observability must stay within its 5% budget.
    if overhead < 0.05 {
        eprintln!("PASS: observability overhead {:.2}% < 5%", overhead * 1e2);
    } else {
        eprintln!(
            "WARN: observability overhead {:.2}% >= 5% (noisy machine?)",
            overhead * 1e2
        );
        failed = true;
    }
    // Gate 3: the live-telemetry sampler must stay within the same 5%
    // budget on the match-bound workload at full width.
    if tel_overhead < 0.05 {
        eprintln!("PASS: telemetry overhead {:.2}% < 5%", tel_overhead * 1e2);
    } else {
        eprintln!(
            "WARN: telemetry overhead {:.2}% >= 5% (noisy machine?)",
            tel_overhead * 1e2
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
