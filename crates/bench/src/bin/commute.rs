//! Coordination-avoidance gate: §4 locking vs lock-elided batch commit
//! for provably-commutative firings, A/B over the commute-stream
//! workload (see [`dps_bench::commute`]). Emits the
//! `dps-commute-report-v1` document and exits 0 iff every gate holds:
//!
//! * elided-leg throughput ≥ **1.5×** the locking leg;
//! * the elided leg acquires **zero** locks (no grants, no blocks,
//!   every skip booked, every commit receipted) and its contention
//!   table shows **zero blocked-ns**;
//! * both legs drain and replay through the §3 oracle;
//! * both falsifiability probes hold: the forced-misclassification run
//!   is rejected by the oracle, and swapped delta order is rejected for
//!   the non-commutative pair but accepted for disjoint commutative
//!   firings.
//!
//! Usage: `commute [--quick] [--json] [--workers N] [--seed S]
//! [--work-us U] [--bench-out PATH]`. With `--json` the report goes to stdout (human
//! summary to stderr); `--bench-out` additionally snapshots it to a
//! file. `obs_check` shape-checks the document in CI.

use std::process::ExitCode;

use dps_bench::commute::{
    commute_document, commute_leg, probe_misclassification, probe_swapped_order, CommuteGates,
    CommuteSpec,
};
use dps_bench::harness::ReportArgs;

fn main() -> ExitCode {
    dps_server::shutdown::install();
    let args = ReportArgs::parse();
    let (quick, json) = (args.quick(), args.json());
    let workers = args.flag_u64("--workers").unwrap_or(8) as usize;
    let seed = args.flag_u64("--seed").unwrap_or(0xC0_2026);
    // Full-size RHS cost is deliberately small: counter-increment
    // firings are cheap, which is precisely when per-firing lock
    // overhead dominates and coordination avoidance pays. Larger
    // --work-us shrinks the measured gap (the RHS amortises the
    // locks), it does not break correctness.
    let (counters, c_steps, makers, m_steps, default_work) = if quick {
        (8, 8, 4, 8, 200)
    } else {
        (16, 16, 8, 16, 50)
    };
    let work_us = args.flag_u64("--work-us").unwrap_or(default_work);
    let spec = CommuteSpec {
        seed,
        workers,
        match_shards: 8,
        counters,
        c_steps,
        makers,
        m_steps,
        work_us,
    };

    eprintln!(
        "commute gate: commute_stream({counters}x{c_steps}, {makers}x{m_steps}), \
         {workers} workers, {work_us}us sleeping RHS"
    );

    let leg = |name: &str, elide| {
        let l = commute_leg(&spec, elide);
        eprintln!(
            "  [{name:>6}] {}/{} commits in {:.1}ms ({:.0}/s) — grants {}, blocks {}, \
             elided {}, blocked {:.2}ms, {} aborts ({} elision-stale), checker {}",
            l.commits,
            l.expected,
            l.secs * 1e3,
            l.throughput(),
            l.lock_grants,
            l.lock_blocks,
            l.lock_elided,
            l.blocked_ns() as f64 / 1e6,
            l.aborts.total(),
            l.aborts.elision_stale,
            l.verdict.name(),
        );
        for err in l.structural_errors.iter().take(3) {
            eprintln!("    ! {err}");
        }
        l
    };
    let locked = leg("locked", false);
    let elided = leg("elided", true);

    let misclassified = probe_misclassification(workers, if quick { 150 } else { 300 });
    let swap = probe_swapped_order();
    eprintln!(
        "  probes: misclassification {}, swapped order (noncommutative {}, commutative {})",
        if misclassified { "rejected" } else { "ACCEPTED (gate must fail)" },
        if swap.0 { "rejected" } else { "ACCEPTED" },
        if swap.1 { "accepted" } else { "REJECTED" },
    );

    let gates = CommuteGates::evaluate(&locked, &elided, misclassified, swap);
    let doc = commute_document(&spec, &locked, &elided, &gates);
    if json {
        println!("{}", doc.to_string_pretty());
    }
    args.write_bench_out(&doc);

    eprintln!(
        "\ncommute gates: speedup {:.2}x ok {} | zero-lock-traffic {} | blocked-ns-zero {} | \
         oracle {} | misclassification {} | swap-probes {}",
        gates.speedup,
        gates.speedup_ok,
        gates.zero_lock_traffic,
        gates.blocked_ns_zero,
        gates.oracle,
        gates.misclassification_rejected,
        gates.swap_probes,
    );
    if gates.all() {
        eprintln!("commute: GATE PASSED");
        ExitCode::SUCCESS
    } else {
        eprintln!("commute: GATE FAILED");
        ExitCode::FAILURE
    }
}
