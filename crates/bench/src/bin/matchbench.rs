//! Shard-count sweep for the sharded match pipeline.
//!
//! The engine-level benchmark behind EXPERIMENTS.md §XS.4: the
//! `match_heavy` workload (64 independent fan-out groups, make-only
//! RHSs, zero data conflict) keeps every instantiation live until it
//! fires, so the conflict set — and with it the per-cycle claim scan —
//! grows linearly and the total match cost quadratically. On the old
//! single-`Mutex<World>` engine that scan serialised every worker; the
//! sharded pipeline divides it by the shard count and takes it off the
//! commit path entirely.
//!
//! The sweep holds workers fixed at 8 and varies `match_shards` over
//! {1, 2, 4, 8}. Every run is trace-validated through the §3 Theorem-2
//! oracle (`semantics::validate_trace`), so the numbers are for
//! semantically consistent executions only. A final instrumented run at
//! the maximum shard count captures the `match_apply` latency histogram
//! and the fan-out counters (batches / applies / free-advances / steals).
//!
//! Two gates (exit 1 on failure):
//! * 1 → 2 shards must improve throughput (the partition must pay for
//!   the delta-log plumbing at the first step);
//! * max shards must beat 1 shard by ≥ 1.5× (the ISSUE 5 floor; the
//!   measured ratio on the reference container is ~7×).
//!
//! ## Observability (`--json`)
//!
//! With `--json`, a machine-readable `dps-match-report-v1` document goes
//! to **stdout** (human tables move to stderr): the sweep samples with
//! per-run fan-out counters, the computed speed-ups, the embedded
//! `dps-obs-report-v1` document from the instrumented run, and an
//! `mvcc` comparison leg (max shards under `ConflictPolicy::
//! MvccSnapshot` — the snapshot read path must keep the pipeline
//! abort-free and within throughput range of the stock locks on this
//! conflict-free workload). `--bench-out PATH` additionally snapshots
//! the document to a file. CI shape-checks it with the `obs_check`
//! binary.

use std::time::Instant;

use dps_bench::harness::ReportArgs;
use dps_bench::workloads;
use dps_core::semantics::validate_trace;
use dps_core::{ParallelConfig, ParallelEngine};
use dps_lock::ConflictPolicy;
use dps_obs::json::Json;
use dps_obs::{FanoutStats, ObsReport, Phase, TelemetryConfig, TimelineDoc};

struct Sample {
    /// Requested shard count (the plan may clamp to component count).
    shards: usize,
    commits: usize,
    secs: f64,
    aborts: u64,
    fanout: FanoutStats,
}

/// One timed, trace-validated run; `observe` additionally returns the
/// obs report (with the `match_apply` histogram and fan-out counters),
/// and it also attaches the live-telemetry sampler so the instrumented
/// run carries a `dps-timeline-v1` document.
fn one_run(
    groups: usize,
    pairs: usize,
    shards: usize,
    workers: usize,
    observe: bool,
    policy: ConflictPolicy,
) -> (Sample, Option<ObsReport>, Option<TimelineDoc>) {
    let (rules, wm) = workloads::match_heavy(groups, pairs);
    let initial = wm.clone();
    let cfg = ParallelConfig {
        workers,
        match_shards: shards,
        observe,
        policy,
        telemetry: observe.then(TelemetryConfig::default),
        stop: dps_server::shutdown::installed(),
        ..Default::default()
    };
    let mut engine = ParallelEngine::new(&rules, wm, cfg);
    let t0 = Instant::now();
    let report = engine.run();
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        report.commits,
        groups * pairs,
        "match_heavy({groups}, {pairs}) must drain completely"
    );
    assert_eq!(
        report.aborts.total(),
        0,
        "match_heavy is conflict-free; aborts mean a pipeline bug"
    );
    validate_trace(&rules, &initial, &report.trace)
        .expect("sharded run must replay single-threadedly (Theorem 2)");
    let obs = engine.observer().map(|rec| rec.report());
    let timeline = engine.telemetry().map(|t| t.doc());
    let sample = Sample {
        shards,
        commits: report.commits,
        secs,
        aborts: report.aborts.total(),
        fanout: report.fanout,
    };
    (sample, obs, timeline)
}

fn best_of(
    groups: usize,
    pairs: usize,
    shards: usize,
    workers: usize,
    reps: usize,
    policy: ConflictPolicy,
) -> Sample {
    (0..reps)
        .map(|_| one_run(groups, pairs, shards, workers, false, policy).0)
        .min_by(|a, b| a.secs.total_cmp(&b.secs))
        .expect("reps >= 1")
}

fn sample_json(s: &Sample) -> Json {
    Json::Obj(vec![
        ("shards".into(), Json::u64(s.shards as u64)),
        ("plan_shards".into(), Json::u64(s.fanout.shards)),
        ("commits".into(), Json::u64(s.commits as u64)),
        ("secs".into(), Json::num(s.secs)),
        ("aborts".into(), Json::u64(s.aborts)),
        ("batches".into(), Json::u64(s.fanout.batches)),
        ("applies".into(), Json::u64(s.fanout.applies)),
        ("free_advances".into(), Json::u64(s.fanout.free_advances)),
        ("steals".into(), Json::u64(s.fanout.steals)),
    ])
}

fn main() {
    dps_server::shutdown::install();
    let args = ReportArgs::parse();
    let (quick, json) = (args.quick(), args.json());
    let (groups, pairs, reps) = if quick { (32, 32, 1) } else { (64, 64, 2) };
    let workers = 8;
    let shard_counts = [1usize, 2, 4, 8];

    eprintln!(
        "Match-shard sweep: match_heavy({groups}, {pairs}), {workers} workers, best of {reps} rep(s)"
    );
    eprintln!(
        "{:>7} {:>9} {:>12} {:>10} {:>9} {:>9} {:>8}",
        "shards", "commits", "commits/s", "time", "applies", "free-adv", "steals"
    );

    let mut sweep: Vec<Sample> = Vec::new();
    for &shards in &shard_counts {
        let s = best_of(groups, pairs, shards, workers, reps, ConflictPolicy::AbortReaders);
        let rate = s.commits as f64 / s.secs;
        let base = sweep
            .first()
            .map_or(1.0, |b| rate / (b.commits as f64 / b.secs));
        eprintln!(
            "{:>7} {:>9} {:>12.0} {:>9.1}ms {:>9} {:>9} {:>8}   ({base:.2}x)",
            s.shards,
            s.commits,
            rate,
            s.secs * 1e3,
            s.fanout.applies,
            s.fanout.free_advances,
            s.fanout.steals,
        );
        sweep.push(s);
    }

    // Instrumented run at max shards: the match_apply histogram and the
    // fan-out counters must be internally consistent.
    let max_shards = *shard_counts.last().unwrap();
    let (observed, obs, timeline) = one_run(
        groups,
        pairs,
        max_shards,
        workers,
        true,
        ConflictPolicy::AbortReaders,
    );
    let obs = obs.expect("observe = true");
    let timeline = timeline.expect("instrumented run attaches telemetry");
    timeline
        .validate()
        .expect("sampled timeline must be internally consistent");
    assert_eq!(
        observed.fanout.batches, observed.commits as u64,
        "every commit publishes exactly one batch"
    );
    assert!(
        observed.fanout.shards > 1,
        "match_heavy has {groups} components; the plan must actually shard"
    );
    let apply_hist = obs
        .phase(Phase::MatchApply)
        .expect("instrumented run records match_apply samples");
    assert!(
        apply_hist.count > 0,
        "shard catch-up work must land in the match_apply histogram"
    );
    eprintln!("\nobservability (instrumented, {} shards):\n{obs}", observed.fanout.shards);

    // MVCC comparison leg at max shards: the snapshot read path must
    // leave this conflict-free workload exactly as abort-free as the
    // stock locks do (one_run asserts zero aborts and oracle replay),
    // with the match-cost story unchanged.
    let mvcc_leg = best_of(
        groups,
        pairs,
        max_shards,
        workers,
        reps,
        ConflictPolicy::MvccSnapshot,
    );
    let rate = |s: &Sample| s.commits as f64 / s.secs;
    eprintln!(
        "\nmvcc leg ({max_shards} shards): {:.0} commits/s vs stock {:.0} ({:.2}x), 0 aborts",
        rate(&mvcc_leg),
        rate(sweep.last().unwrap()),
        rate(&mvcc_leg) / rate(sweep.last().unwrap()),
    );

    let r1 = rate(&sweep[0]);
    let r2 = rate(&sweep[1]);
    let rmax = rate(sweep.last().unwrap());

    {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str("dps-match-report-v1")),
            (
                "config".into(),
                Json::Obj(vec![
                    ("groups".into(), Json::u64(groups as u64)),
                    ("pairs".into(), Json::u64(pairs as u64)),
                    ("workers".into(), Json::u64(workers as u64)),
                    ("reps".into(), Json::u64(reps as u64)),
                ]),
            ),
            (
                "sweep".into(),
                Json::Arr(sweep.iter().map(sample_json).collect()),
            ),
            (
                "speedup".into(),
                Json::Obj(vec![
                    ("x2_over_x1".into(), Json::num(r2 / r1)),
                    ("max_over_x1".into(), Json::num(rmax / r1)),
                ]),
            ),
            ("observability".into(), obs.to_json()),
            ("timeline".into(), timeline.to_json()),
            (
                "mvcc".into(),
                Json::Obj(vec![
                    ("policy".into(), Json::str("mvcc_snapshot")),
                    ("sample".into(), sample_json(&mvcc_leg)),
                    (
                        "vs_stock_max_shards".into(),
                        Json::num(rate(&mvcc_leg) / rmax),
                    ),
                ]),
            ),
        ]);
        if json {
            println!("{}", doc.to_string_pretty());
        }
        args.write_bench_out(&doc);
    }

    // Gate 1: the first sharding step must pay.
    eprintln!(
        "\nshard speed-up: 1 → 2: {:.2}x, 1 → {}: {:.2}x",
        r2 / r1,
        sweep.last().unwrap().shards,
        rmax / r1
    );
    let mut failed = false;
    if r2 > r1 {
        eprintln!("PASS: 2 shards beat 1 shard");
    } else {
        eprintln!("FAIL: 2 shards did not beat 1 shard");
        failed = true;
    }
    // Gate 2: the ISSUE 5 floor.
    if rmax >= 1.5 * r1 {
        eprintln!("PASS: max shards >= 1.5x over 1 shard");
    } else {
        eprintln!("FAIL: max shards only {:.2}x over 1 shard (< 1.5x floor)", rmax / r1);
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
