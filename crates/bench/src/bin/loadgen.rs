//! Server load gate: hundreds of open-loop sessions against the
//! `dps-server` front door, admission control A/B'd at overload, plus
//! a disconnect-chaos leg (see [`dps_bench::server_load`]). Emits the
//! `dps-server-report-v1` document and exits 0 iff every gate holds:
//!
//! * every leg drains, replays through the §3 oracle, leaks zero
//!   locks/pins, and its books reconcile (admitted = commits + aborts,
//!   per-session sums = globals);
//! * at 2× the calibrated capacity, shed-ON p99 < shed-OFF p99;
//! * shed-ON goodput stays ≥ 70% of shed-OFF at 2×;
//! * the chaos leg injects at least the configured number of
//!   mid-transaction disconnects and still leaks nothing.
//!
//! Usage: `loadgen [--quick] [--json] [--workers N] [--seed S]
//! [--bench-out PATH]`. With `--json` the report goes to stdout (human
//! summary to stderr); `--bench-out` additionally snapshots it to a
//! file. `obs_check` shape-checks the document in CI. Ctrl-C/SIGTERM
//! exits through the graceful drain: the leg in flight refuses new
//! transactions, finishes open ones, and the run reports what it had.

use std::process::ExitCode;

use dps_bench::harness::ReportArgs;
use dps_bench::server_load::{run_leg, server_document, LoadGates, LoadLeg, LoadSpec};
use dps_server::shutdown;

fn main() -> ExitCode {
    let args = ReportArgs::parse();
    let (quick, json) = (args.quick(), args.json());
    let workers = args.flag_u64("--workers").unwrap_or(4) as usize;
    let seed = args.flag_u64("--seed").unwrap_or(0x5E55_1099);
    let stop = shutdown::install();

    let (sessions, chaos_sessions, txns, keys) = if quick {
        (48, 160, 16, 64)
    } else {
        (128, 384, 32, 256)
    };
    let spec = LoadSpec {
        seed,
        sessions,
        chaos_sessions,
        txns_per_session: txns,
        keys,
        zipf_s: 1.0,
        workers,
        txn_timeout_ms: 250,
        min_disconnects: 100,
        stop: Some(stop.clone()),
    };

    eprintln!(
        "loadgen: zipf_accumulate({keys} keys, s=1.0), {sessions} sessions x {txns} txns, \
         {} chaos sessions, {workers} workers, seed {seed:#x}",
        spec.chaos_sessions,
    );

    let summarize = |l: &LoadLeg| {
        eprintln!(
            "  [{:>12}] offered {} committed {} shed {} aborted {} failed {} | \
             {:.0} txn/s | p50 {}us p99 {}us p999 {}us | \
             disc {} timeo {} | locks {} pins {} | replay {}",
            l.name,
            l.offered,
            l.committed,
            l.shed_txns,
            l.aborted,
            l.failed,
            l.goodput_tps,
            l.p50_us,
            l.p99_us,
            l.p999_us,
            l.server.disconnects,
            l.server.timeouts,
            l.held_locks,
            l.snapshot_pins,
            l.replay,
        );
    };

    // Calibration: closed loop at *bounded* concurrency (2x workers).
    // Every external insert serialises on the relation's action-write
    // lock, so an unbounded closed loop measures the convoy collapse,
    // not the capacity; a small fleet keeps the lock queue short and
    // its goodput is the sustainable external-transaction capacity C,
    // the unit the 1x/2x/4x offered rates are multiples of.
    let cal_spec = LoadSpec {
        sessions: (workers * 2).max(4),
        txns_per_session: if quick { 150 } else { 400 },
        ..spec.clone()
    };
    let calibrate = run_leg(&cal_spec, "calibrate", 0.0, 0.0, false, 0.0, false);
    summarize(&calibrate);
    let capacity = calibrate.goodput_tps.max(1.0);
    eprintln!("  capacity C = {capacity:.0} txn/s");

    let mut legs = vec![calibrate];
    for &mult in &[1.0, 2.0, 4.0] {
        for &shed in &[false, true] {
            if stop.load(std::sync::atomic::Ordering::Relaxed) {
                eprintln!("loadgen: stop requested, skipping remaining legs");
                break;
            }
            let name = format!("{}x_shed_{}", mult as u64, if shed { "on" } else { "off" });
            let leg = run_leg(&spec, &name, mult, mult * capacity, shed, capacity, false);
            summarize(&leg);
            legs.push(leg);
        }
    }

    let chaos = run_leg(&spec, "chaos", 0.0, 0.0, false, 0.0, true);
    summarize(&chaos);

    let gates = LoadGates::evaluate(&spec, &legs, &chaos);
    let doc = server_document(&spec, capacity, &legs, &chaos, &gates);
    if json {
        println!("{}", doc.to_string_pretty());
    }
    args.write_bench_out(&doc);

    eprintln!(
        "\nloadgen gates: oracle {} | shed-p99-improved {} | goodput-maintained {} | \
         disconnects>=100 {} ({}) | disconnect-leaks-zero {}",
        gates.oracle,
        gates.shed_p99_improved,
        gates.goodput_maintained,
        gates.disconnects_min,
        chaos.server.disconnects,
        gates.disconnect_leaks_zero,
    );
    if gates.all() {
        eprintln!("loadgen: GATE PASSED");
        ExitCode::SUCCESS
    } else {
        eprintln!("loadgen: GATE FAILED");
        ExitCode::FAILURE
    }
}
