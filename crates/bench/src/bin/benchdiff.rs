//! Perf-trajectory regression gate over committed bench reports.
//!
//! Usage: `benchdiff [--json] REPORT... ` — two or more `BENCH_*.json`
//! paths (or fresh `--bench-out` artifacts), oldest first. Each report
//! is reduced to its comparable legs keyed by `(workload, policy,
//! shards, workers)` (see [`dps_bench::diff`]); every consecutive pair
//! is diffed and printed, so a chain of snapshots reads as the
//! repository's performance trajectory.
//!
//! The **gate** applies to the newest pair only — the last committed
//! baseline vs the candidate: exit 1 iff a matched leg drops more than
//! 15% throughput or gains more than 25% commit-path p99 latency.
//! Earlier pairs are informational (history already shipped). Keys
//! present on only one side are noted, never failed — report schemas
//! grow legs over time, and cross-schema pairs (e.g. an mvcc report vs
//! a recovery report) legitimately share no keys: an empty
//! intersection passes, it does not vacuously fail.
//!
//! With `--json` a `dps-benchdiff-report-v1` document per pair goes to
//! stdout (one JSON array); the human table always goes to stderr.

use std::process::ExitCode;

use dps_bench::diff::{diff, extract_legs, DiffReport, Leg};
use dps_obs::json::{self, Json};

fn load_legs(path: &str) -> Result<Vec<Leg>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("benchdiff: reading {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("benchdiff: parsing {path}: {e}"))?;
    let legs = extract_legs(&doc).map_err(|e| format!("benchdiff: {path}: {e}"))?;
    if legs.is_empty() {
        return Err(format!("benchdiff: {path}: no comparable legs extracted"));
    }
    Ok(legs)
}

fn print_pair(rep: &DiffReport, gating: bool) {
    eprintln!(
        "\n{} -> {}{}",
        rep.base_label,
        rep.new_label,
        if gating { "  [gate]" } else { "" }
    );
    if rep.deltas.is_empty() {
        eprintln!("  no shared legs (different report schemas) — nothing to compare");
    }
    for d in &rep.deltas {
        let p99 = match (d.base_p99_ns, d.new_p99_ns, d.p99_ratio) {
            (Some(b), Some(n), Some(r)) => format!(", p99 {b} -> {n} ns ({:+.1}%)", (r - 1.0) * 1e2),
            _ => String::new(),
        };
        eprintln!(
            "  [{}] {:<58} {:>10.1} -> {:>10.1} commits/s ({:+.1}%){}",
            if d.regressed() { "XX" } else { "ok" },
            d.key,
            d.base_throughput,
            d.new_throughput,
            (d.throughput_ratio - 1.0) * 1e2,
            p99,
        );
    }
    for k in &rep.only_base {
        eprintln!("  [--] {k} only in baseline");
    }
    for k in &rep.only_new {
        eprintln!("  [++] {k} only in candidate");
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let json_out = argv.iter().any(|a| a == "--json");
    let paths: Vec<&String> = argv.iter().filter(|a| !a.starts_with("--")).collect();
    if paths.len() < 2 {
        eprintln!("usage: benchdiff [--json] BASELINE.json [...] CANDIDATE.json");
        return ExitCode::FAILURE;
    }

    let mut all = Vec::new();
    for path in &paths {
        match load_legs(path) {
            Ok(legs) => all.push((path.as_str(), legs)),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut docs = Vec::new();
    let mut gate_regressions = 0usize;
    for window in 0..all.len() - 1 {
        let (base_label, base) = &all[window];
        let (new_label, new) = &all[window + 1];
        let gating = window + 2 == all.len();
        let rep = diff(base_label, base, new_label, new);
        print_pair(&rep, gating);
        if gating {
            gate_regressions = rep.regressions().len();
        }
        docs.push(rep.to_json());
    }
    if json_out {
        println!("{}", Json::Arr(docs).to_string_pretty());
    }

    if gate_regressions == 0 {
        eprintln!("\nbenchdiff: GATE PASSED (no regression outside tolerance bands)");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\nbenchdiff: GATE FAILED ({gate_regressions} leg(s) outside tolerance: \
             >15% throughput drop or >25% p99 rise)"
        );
        ExitCode::FAILURE
    }
}
