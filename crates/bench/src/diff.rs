//! Perf-trajectory diffing over committed bench reports.
//!
//! Every gate binary snapshots its JSON document with `--bench-out`,
//! and the repo commits one `BENCH_<n>.json` per PR — so the history
//! of the codebase carries its own performance trajectory. This module
//! turns any two (or more) of those snapshots into a comparable form:
//!
//! * [`extract_legs`] reduces a report of **any** known schema
//!   (`dps-scaling-report-v1`, `dps-match-report-v1`,
//!   `dps-chaos-report-v1`, `dps-mvcc-report-v1`,
//!   `dps-recovery-report-v1`) to a flat list of [`Leg`]s keyed by
//!   `(workload, policy, shards, workers)` — the identity of a
//!   measurement, stable across report shapes;
//! * [`diff`] matches legs by key between a baseline and a candidate
//!   and computes per-metric deltas with tolerance bands: throughput
//!   may drop at most [`THROUGHPUT_DROP_TOLERANCE`], commit-path p99
//!   latency may rise at most [`P99_RISE_TOLERANCE`]. Unmatched keys
//!   are reported, never failed — schemas grow legs over time.
//!
//! The `benchdiff` binary drives this as the CI perf-regression gate:
//! exit 1 iff the newest pair of reports shows a regression outside
//! the bands. Tolerances are deliberately wide — CI boxes are noisy —
//! so only a structural regression (a lost optimisation, an
//! accidentally serialised path) trips the gate, not scheduler jitter.

use dps_obs::json::Json;

/// Throughput may drop by at most this fraction before the gate fails
/// (0.15 = the candidate must keep ≥ 85% of the baseline's rate).
pub const THROUGHPUT_DROP_TOLERANCE: f64 = 0.15;

/// p99 latency may rise by at most this fraction before the gate
/// fails (0.25 = the candidate must stay ≤ 125% of the baseline).
pub const P99_RISE_TOLERANCE: f64 = 0.25;

/// One comparable measurement extracted from a bench report.
#[derive(Clone, Debug, PartialEq)]
pub struct Leg {
    /// Workload label, qualified by the measurement context (e.g.
    /// `scaling.partitioned`, `match_heavy.durability_on`).
    pub workload: String,
    /// Conflict policy the leg ran under.
    pub policy: String,
    /// Shard count (lock or match shards, whichever the sweep varied;
    /// 0 = the report does not parameterise shards for this leg).
    pub shards: u64,
    /// Worker threads.
    pub workers: u64,
    /// Commits per second.
    pub throughput: f64,
    /// p99 latency in nanoseconds, when the report carries a histogram
    /// for this leg (commit path on scaling, `match_apply` on match).
    pub p99_ns: Option<u64>,
}

impl Leg {
    /// The match key: two legs compare iff their keys are equal.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/shards={}/workers={}",
            self.workload, self.policy, self.shards, self.workers
        )
    }
}

fn need_str(doc: &Json, path: &[&str]) -> Result<String, String> {
    doc.at(path)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string at {}", path.join(".")))
}

fn need_u64(doc: &Json, path: &[&str]) -> Result<u64, String> {
    doc.at(path)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer at {}", path.join(".")))
}

fn need_f64(doc: &Json, path: &[&str]) -> Result<f64, String> {
    doc.at(path)
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite())
        .ok_or_else(|| format!("missing number at {}", path.join(".")))
}

/// Throughput from a `{commits, secs}` row.
fn row_throughput(row: &Json, at: &str) -> Result<f64, String> {
    let commits = row
        .get("commits")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{at}: missing commits"))?;
    let secs = row
        .get("secs")
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite() && *v > 0.0)
        .ok_or_else(|| format!("{at}: missing or non-positive secs"))?;
    Ok(commits as f64 / secs)
}

fn scaling_legs(doc: &Json) -> Result<Vec<Leg>, String> {
    let lock_shards = need_u64(doc, &["config", "lock_shards"])?;
    let mut legs = Vec::new();
    // (sweep key, workload label, shard count for the key)
    let sweeps = [
        ("partitioned", "scaling.partitioned", lock_shards),
        ("partitioned_1shard", "scaling.partitioned", 1),
        ("contended", "scaling.contended", lock_shards),
        ("match_heavy", "scaling.match_heavy", 0),
    ];
    for (key, workload, shards) in sweeps {
        // `match_heavy` joined the sweeps later; its absence is an old
        // shape, not an error.
        let Some(rows) = doc.at(&["sweeps", key]).and_then(Json::as_arr) else {
            continue;
        };
        for (i, row) in rows.iter().enumerate() {
            let at = format!("scaling.sweeps.{key}[{i}]");
            legs.push(Leg {
                workload: workload.into(),
                policy: "abort_readers".into(),
                shards,
                workers: need_u64(row, &["workers"])?,
                throughput: row_throughput(row, &at)?,
                p99_ns: None,
            });
        }
    }
    // The instrumented contended run (4 workers) carries the commit
    // histogram: attach its p99 to the matching sweep leg.
    if let Some(p99) = doc
        .at(&["observability", "phases", "commit", "p99_ns"])
        .and_then(Json::as_u64)
    {
        if let Some(leg) = legs.iter_mut().find(|l| {
            l.workload == "scaling.contended" && l.workers == 4 && l.shards == lock_shards
        }) {
            leg.p99_ns = Some(p99);
        }
    }
    Ok(legs)
}

fn match_legs(doc: &Json) -> Result<Vec<Leg>, String> {
    let workers = need_u64(doc, &["config", "workers"])?;
    let mut legs = Vec::new();
    let rows = doc
        .get("sweep")
        .and_then(Json::as_arr)
        .ok_or("match: missing sweep array")?;
    for (i, row) in rows.iter().enumerate() {
        let at = format!("match.sweep[{i}]");
        legs.push(Leg {
            workload: "match_heavy".into(),
            policy: "abort_readers".into(),
            shards: need_u64(row, &["shards"])?,
            workers,
            throughput: row_throughput(row, &at)?,
            p99_ns: None,
        });
    }
    // The instrumented run (max shards) carries the match_apply
    // histogram: attach its p99 to the max-shards leg.
    if let Some(p99) = doc
        .at(&["observability", "phases", "match_apply", "p99_ns"])
        .and_then(Json::as_u64)
    {
        if let Some(leg) = legs.iter_mut().max_by_key(|l| l.shards) {
            leg.p99_ns = Some(p99);
        }
    }
    // The MVCC comparison leg (joined later — optional).
    if let Some(sample) = doc.at(&["mvcc", "sample"]) {
        legs.push(Leg {
            workload: "match_heavy".into(),
            policy: "mvcc_snapshot".into(),
            shards: need_u64(sample, &["shards"])?,
            workers,
            throughput: row_throughput(sample, "match.mvcc.sample")?,
            p99_ns: None,
        });
    }
    Ok(legs)
}

fn chaos_legs(doc: &Json) -> Result<Vec<Leg>, String> {
    // Only the governor A/B is a *measurement* (hot spot, expensive
    // RHS, best-effort throughput); the sweep runs are correctness
    // probes with tiny task counts, not comparable perf signals.
    let workers = need_u64(doc, &["governor_comparison", "workers"])?;
    let mut legs = Vec::new();
    for leg in ["off", "on"] {
        legs.push(Leg {
            workload: format!("doom_storm.governor_{leg}"),
            policy: "abort_readers".into(),
            shards: 0,
            workers,
            throughput: need_f64(doc, &["governor_comparison", leg, "throughput"])?,
            p99_ns: None,
        });
    }
    Ok(legs)
}

fn mvcc_legs(doc: &Json) -> Result<Vec<Leg>, String> {
    let workers = need_u64(doc, &["workload", "workers"])?;
    let mut legs = Vec::new();
    for leg in ["stock", "mvcc"] {
        legs.push(Leg {
            workload: "false_conflict_stream".into(),
            policy: need_str(doc, &[leg, "policy"])?,
            shards: 0,
            workers,
            throughput: need_f64(doc, &[leg, "throughput"])?,
            p99_ns: None,
        });
    }
    Ok(legs)
}

fn commute_legs(doc: &Json) -> Result<Vec<Leg>, String> {
    let workers = need_u64(doc, &["workload", "workers"])?;
    let shards = need_u64(doc, &["workload", "match_shards"])?;
    let mut legs = Vec::new();
    for leg in ["locked", "elided"] {
        legs.push(Leg {
            workload: "commute_stream".into(),
            policy: need_str(doc, &[leg, "mode"])?,
            shards,
            workers,
            throughput: need_f64(doc, &[leg, "throughput"])?,
            p99_ns: None,
        });
    }
    Ok(legs)
}

fn recovery_legs(doc: &Json) -> Result<Vec<Leg>, String> {
    let workers = need_u64(doc, &["workers"])?;
    let mut legs = Vec::new();
    for (leg, key) in [("durability_off", "off_throughput"), ("durability_on", "on_throughput")] {
        legs.push(Leg {
            workload: format!("match_heavy.{leg}"),
            policy: "abort_readers".into(),
            shards: 0,
            workers,
            throughput: need_f64(doc, &["overhead", key])?,
            p99_ns: None,
        });
    }
    Ok(legs)
}

fn server_legs(doc: &Json) -> Result<Vec<Leg>, String> {
    let workers = need_u64(doc, &["workload", "workers"])?;
    let rows = doc
        .at(&["legs"])
        .and_then(Json::as_arr)
        .ok_or("server report: missing legs array")?;
    let mut legs = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let at = format!("server.legs[{i}]");
        let name = row
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{at}: missing name"))?;
        // Only the capacity-tracking legs are comparable across runs:
        // calibration and 1x-shed-ON both measure the sustainable
        // external-transaction rate with concurrency bounded (closed
        // loop / in-flight cap) and agree within a few percent. Every
        // unprotected or overloaded leg is excluded — 1x shed-OFF can
        // transiently convoy at high session counts (bimodal: full
        // capacity or ~100x collapse), 2x/4x shed-OFF measures the
        // collapse (noise by design), overload shed-ON goodput depends
        // on how the admission race resolves (±30% run-to-run), and
        // the chaos leg measures fault handling, not throughput.
        if !matches!(name, "calibrate" | "1x_shed_on") {
            continue;
        }
        legs.push(Leg {
            workload: format!("zipf_accumulate.{name}"),
            policy: "abort_readers".into(),
            shards: 0,
            workers,
            throughput: row
                .get("goodput_tps")
                .and_then(Json::as_f64)
                .filter(|v| v.is_finite())
                .ok_or_else(|| format!("{at}: missing goodput_tps"))?,
            p99_ns: None,
        });
    }
    Ok(legs)
}

/// Reduces a bench report of any known schema to its comparable legs.
pub fn extract_legs(doc: &Json) -> Result<Vec<Leg>, String> {
    match need_str(doc, &["schema"])?.as_str() {
        "dps-scaling-report-v1" => scaling_legs(doc),
        "dps-match-report-v1" => match_legs(doc),
        "dps-chaos-report-v1" => chaos_legs(doc),
        "dps-mvcc-report-v1" => mvcc_legs(doc),
        "dps-commute-report-v1" => commute_legs(doc),
        "dps-recovery-report-v1" => recovery_legs(doc),
        "dps-server-report-v1" => server_legs(doc),
        other => Err(format!("benchdiff: unknown schema {other:?}")),
    }
}

/// One matched key's per-metric deltas.
#[derive(Clone, Debug)]
pub struct Delta {
    /// The shared [`Leg::key`].
    pub key: String,
    /// Baseline commits/second.
    pub base_throughput: f64,
    /// Candidate commits/second.
    pub new_throughput: f64,
    /// `new / base` (> 1 is an improvement).
    pub throughput_ratio: f64,
    /// Baseline p99 (ns), when both sides carry one.
    pub base_p99_ns: Option<u64>,
    /// Candidate p99 (ns), when both sides carry one.
    pub new_p99_ns: Option<u64>,
    /// `new / base` p99 (< 1 is an improvement), when both sides
    /// carry one.
    pub p99_ratio: Option<f64>,
}

impl Delta {
    /// Throughput fell outside the tolerance band.
    pub fn throughput_regressed(&self) -> bool {
        self.throughput_ratio < 1.0 - THROUGHPUT_DROP_TOLERANCE
    }

    /// p99 rose outside the tolerance band (never fires without a p99
    /// on both sides).
    pub fn p99_regressed(&self) -> bool {
        self.p99_ratio.is_some_and(|r| r > 1.0 + P99_RISE_TOLERANCE)
    }

    /// Either metric regressed.
    pub fn regressed(&self) -> bool {
        self.throughput_regressed() || self.p99_regressed()
    }

    /// JSON row for the `dps-benchdiff-report-v1` document.
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<u64>| v.map_or(Json::Null, Json::u64);
        Json::Obj(vec![
            ("key".into(), Json::str(self.key.clone())),
            ("base_throughput".into(), Json::num(self.base_throughput)),
            ("new_throughput".into(), Json::num(self.new_throughput)),
            ("throughput_ratio".into(), Json::num(self.throughput_ratio)),
            ("base_p99_ns".into(), opt(self.base_p99_ns)),
            ("new_p99_ns".into(), opt(self.new_p99_ns)),
            (
                "p99_ratio".into(),
                self.p99_ratio.map_or(Json::Null, Json::num),
            ),
            ("regressed".into(), Json::Bool(self.regressed())),
        ])
    }
}

/// The comparison of one (baseline, candidate) report pair.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Label of the baseline report (its path).
    pub base_label: String,
    /// Label of the candidate report (its path).
    pub new_label: String,
    /// Per-key deltas, in baseline order.
    pub deltas: Vec<Delta>,
    /// Keys only the baseline carries (an old report shape — noted,
    /// never failed).
    pub only_base: Vec<String>,
    /// Keys only the candidate carries (a grown report — noted, never
    /// failed).
    pub only_new: Vec<String>,
}

impl DiffReport {
    /// Every delta outside its tolerance band.
    pub fn regressions(&self) -> Vec<&Delta> {
        self.deltas.iter().filter(|d| d.regressed()).collect()
    }

    /// The `dps-benchdiff-report-v1` document for this pair.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::str("dps-benchdiff-report-v1")),
            ("base".into(), Json::str(self.base_label.clone())),
            ("candidate".into(), Json::str(self.new_label.clone())),
            (
                "tolerances".into(),
                Json::Obj(vec![
                    (
                        "throughput_drop".into(),
                        Json::num(THROUGHPUT_DROP_TOLERANCE),
                    ),
                    ("p99_rise".into(), Json::num(P99_RISE_TOLERANCE)),
                ]),
            ),
            (
                "deltas".into(),
                Json::Arr(self.deltas.iter().map(Delta::to_json).collect()),
            ),
            (
                "only_base".into(),
                Json::Arr(self.only_base.iter().map(|k| Json::str(k.clone())).collect()),
            ),
            (
                "only_candidate".into(),
                Json::Arr(self.only_new.iter().map(|k| Json::str(k.clone())).collect()),
            ),
            (
                "regressions".into(),
                Json::u64(self.regressions().len() as u64),
            ),
        ])
    }
}

/// Matches `new` against `base` by [`Leg::key`] and computes deltas.
pub fn diff(base_label: &str, base: &[Leg], new_label: &str, new: &[Leg]) -> DiffReport {
    let mut deltas = Vec::new();
    let mut only_base = Vec::new();
    let find = |legs: &[Leg], key: &str| legs.iter().find(|l| l.key() == key).cloned();
    for b in base {
        let key = b.key();
        match find(new, &key) {
            Some(n) => {
                let p99 = match (b.p99_ns, n.p99_ns) {
                    (Some(bp), Some(np)) if bp > 0 => {
                        (Some(bp), Some(np), Some(np as f64 / bp as f64))
                    }
                    _ => (None, None, None),
                };
                deltas.push(Delta {
                    key,
                    base_throughput: b.throughput,
                    new_throughput: n.throughput,
                    throughput_ratio: n.throughput / b.throughput.max(1e-12),
                    base_p99_ns: p99.0,
                    new_p99_ns: p99.1,
                    p99_ratio: p99.2,
                });
            }
            None => only_base.push(key),
        }
    }
    let only_new = new
        .iter()
        .map(Leg::key)
        .filter(|k| !base.iter().any(|b| &b.key() == k))
        .collect();
    DiffReport {
        base_label: base_label.into(),
        new_label: new_label.into(),
        deltas,
        only_base,
        only_new,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_obs::json;

    fn leg(workload: &str, workers: u64, tput: f64, p99: Option<u64>) -> Leg {
        Leg {
            workload: workload.into(),
            policy: "abort_readers".into(),
            shards: 0,
            workers,
            throughput: tput,
            p99_ns: p99,
        }
    }

    #[test]
    fn matched_legs_produce_deltas_and_band_edges_hold() {
        let base = vec![leg("a", 4, 1000.0, Some(100)), leg("b", 8, 500.0, None)];
        // "a" drops exactly to the band edge (ratio 0.85 is NOT a
        // regression — the band is open), "b" improves.
        let new = vec![leg("a", 4, 850.0, Some(100)), leg("b", 8, 700.0, None)];
        let rep = diff("base", &base, "new", &new);
        assert_eq!(rep.deltas.len(), 2);
        assert!(rep.regressions().is_empty(), "band edges must pass");
        // One tick below the edge fails.
        let worse = vec![leg("a", 4, 849.0, Some(100)), leg("b", 8, 700.0, None)];
        let rep = diff("base", &base, "new", &worse);
        assert_eq!(rep.regressions().len(), 1);
        assert_eq!(rep.regressions()[0].key, base[0].key());
    }

    #[test]
    fn p99_band_fires_only_when_both_sides_carry_one() {
        let base = vec![leg("a", 4, 1000.0, Some(1000))];
        // Throughput fine, p99 blown.
        let new = vec![leg("a", 4, 1000.0, Some(1251))];
        let rep = diff("b", &base, "n", &new);
        assert!(rep.deltas[0].p99_regressed());
        assert!(rep.deltas[0].regressed());
        // Candidate lost its histogram (old shape on one side): the
        // p99 gate cannot fire.
        let new = vec![leg("a", 4, 1000.0, None)];
        let rep = diff("b", &base, "n", &new);
        assert!(rep.deltas[0].p99_ratio.is_none());
        assert!(!rep.deltas[0].regressed());
    }

    #[test]
    fn unmatched_keys_are_noted_never_failed() {
        let base = vec![leg("old_only", 4, 100.0, None), leg("both", 4, 100.0, None)];
        let new = vec![leg("both", 4, 100.0, None), leg("new_only", 4, 100.0, None)];
        let rep = diff("b", &base, "n", &new);
        assert_eq!(rep.deltas.len(), 1);
        assert_eq!(rep.only_base, vec![base[0].key()]);
        assert_eq!(rep.only_new, vec![new[1].key()]);
        assert!(rep.regressions().is_empty());
    }

    #[test]
    fn server_reports_extract_stable_legs_only() {
        let doc = json::parse(
            r#"{
              "schema": "dps-server-report-v1",
              "workload": { "workers": 4 },
              "legs": [
                { "name": "calibrate", "goodput_tps": 2900.0 },
                { "name": "1x_shed_off", "goodput_tps": 2850.0 },
                { "name": "1x_shed_on", "goodput_tps": 2840.0 },
                { "name": "2x_shed_off", "goodput_tps": 23.0 },
                { "name": "2x_shed_on", "goodput_tps": 2800.0 },
                { "name": "4x_shed_off", "goodput_tps": 19.0 },
                { "name": "4x_shed_on", "goodput_tps": 2300.0 }
              ]
            }"#,
        )
        .unwrap();
        let legs = extract_legs(&doc).unwrap();
        // Only the capacity-tracking legs survive; every shed-OFF leg
        // (transient convoys even at 1x) and the overload shed-ON legs
        // (admission-race noise) are excluded.
        assert_eq!(legs.len(), 2);
        assert_eq!(
            legs[0].key(),
            "zipf_accumulate.calibrate/abort_readers/shards=0/workers=4"
        );
        assert_eq!(
            legs[1].key(),
            "zipf_accumulate.1x_shed_on/abort_readers/shards=0/workers=4"
        );
        assert!(legs.iter().all(|l| l.throughput > 2500.0));
        assert!(legs.iter().all(|l| l.p99_ns.is_none()));
    }

    #[test]
    fn recovery_reports_extract_overhead_legs() {
        let doc = json::parse(
            r#"{
              "schema": "dps-recovery-report-v1",
              "workers": 8,
              "overhead": { "off_throughput": 2000.0, "on_throughput": 1800.0 }
            }"#,
        )
        .unwrap();
        let legs = extract_legs(&doc).unwrap();
        assert_eq!(legs.len(), 2);
        assert_eq!(legs[0].key(), "match_heavy.durability_off/abort_readers/shards=0/workers=8");
        assert_eq!(legs[0].throughput, 2000.0);
        assert_eq!(legs[1].throughput, 1800.0);
    }

    #[test]
    fn commute_reports_extract_both_modes() {
        let doc = json::parse(
            r#"{
              "schema": "dps-commute-report-v1",
              "workload": { "workers": 8, "match_shards": 8 },
              "locked": { "mode": "locked", "throughput": 1500.0 },
              "elided": { "mode": "elided", "throughput": 3000.0 }
            }"#,
        )
        .unwrap();
        let legs = extract_legs(&doc).unwrap();
        assert_eq!(legs.len(), 2);
        assert_eq!(legs[0].key(), "commute_stream/locked/shards=8/workers=8");
        assert_eq!(legs[1].key(), "commute_stream/elided/shards=8/workers=8");
        assert_eq!(legs[1].throughput, 3000.0);
    }

    #[test]
    fn match_reports_extract_sweep_and_attach_p99_to_max_shards() {
        let doc = json::parse(
            r#"{
              "schema": "dps-match-report-v1",
              "config": { "workers": 8 },
              "sweep": [
                { "shards": 1, "commits": 100, "secs": 1.0 },
                { "shards": 8, "commits": 100, "secs": 0.2 }
              ],
              "observability": { "phases": { "match_apply": { "p99_ns": 4200 } } },
              "mvcc": { "sample": { "shards": 8, "commits": 100, "secs": 0.25 } }
            }"#,
        )
        .unwrap();
        let legs = extract_legs(&doc).unwrap();
        assert_eq!(legs.len(), 3);
        assert_eq!(legs[0].p99_ns, None);
        assert_eq!(legs[1].p99_ns, Some(4200), "p99 attaches to the max-shards leg");
        assert_eq!(legs[2].policy, "mvcc_snapshot");
        // Distinct shard counts are distinct keys.
        assert_ne!(legs[0].key(), legs[1].key());
    }

    #[test]
    fn diff_report_serializes_with_tolerances() {
        let base = vec![leg("a", 4, 1000.0, Some(100))];
        let new = vec![leg("a", 4, 100.0, Some(500))];
        let doc = diff("BENCH_7.json", &base, "candidate.json", &new).to_json();
        let text = doc.to_string_pretty();
        let back = json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("regressions").and_then(Json::as_u64), Some(1));
        assert_eq!(
            back.at(&["deltas"]).and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn unknown_schema_is_an_error() {
        let doc = json::parse(r#"{ "schema": "dps-mystery-v9" }"#).unwrap();
        assert!(extract_legs(&doc).is_err());
    }
}
