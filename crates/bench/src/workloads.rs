//! Synthetic concrete rule workloads with controllable interference —
//! the knobs §5 identifies (degree of conflict, execution time, number
//! of processors) realised as real rule systems.

use dps_rules::RuleSet;
use dps_wm::{WmeData, WorkingMemory};

/// `n` independent counters, each counting down from `start`: zero
/// interference, embarrassingly parallel. Total commits = `n * start`.
pub fn counters(n: usize, start: i64) -> (RuleSet, WorkingMemory) {
    let rules = RuleSet::parse("(p bump (cell ^n { > 0 <n> }) --> (modify 1 ^n (- <n> 1)))")
        .expect("static workload parses");
    let mut wm = WorkingMemory::new();
    for _ in 0..n {
        wm.insert(WmeData::new("cell").with("n", start));
    }
    (rules, wm)
}

/// `n` pending deltas all folded into one shared accumulator: maximal
/// interference (every RHS writes the same tuple). Total commits = `n`;
/// the final total equals `1 + 2 + … + n`.
pub fn hot_accumulator(n: i64) -> (RuleSet, WorkingMemory) {
    let rules = RuleSet::parse(
        "(p apply (delta ^v <d>) (acc ^total <t>)
           --> (remove 1) (modify 2 ^total (+ <t> <d>)))",
    )
    .expect("static workload parses");
    let mut wm = WorkingMemory::new();
    for i in 1..=n {
        wm.insert(WmeData::new("delta").with("v", i));
    }
    wm.insert(WmeData::new("acc").with("total", 0i64));
    (rules, wm)
}

/// Tunable contention: `tasks` tasks, each charging one of `resources`
/// shared tally tuples. `resources = tasks` → no interference;
/// `resources = 1` → a single hot spot. Total commits = `tasks`.
pub fn shared_resources(tasks: usize, resources: usize) -> (RuleSet, WorkingMemory) {
    assert!(resources > 0);
    let rules = RuleSet::parse(
        "(p charge (task ^res <r> ^state todo) (tally ^id <r> ^count <c>)
           --> (modify 1 ^state done) (modify 2 ^count (+ <c> 1)))",
    )
    .expect("static workload parses");
    let mut wm = WorkingMemory::new();
    for r in 0..resources {
        wm.insert(
            WmeData::new("tally")
                .with("id", r as i64)
                .with("count", 0i64),
        );
    }
    for t in 0..tasks {
        wm.insert(
            WmeData::new("task")
                .with("res", (t % resources) as i64)
                .with("state", "todo"),
        );
    }
    (rules, wm)
}

/// The manufacturing / process-control pipeline the paper's introduction
/// motivates: `jobs` jobs advance through `stages` routing steps. Jobs
/// are mutually independent (they share only read-only routing tuples),
/// so run-time analysis parallelises them while rule-level static
/// analysis must serialise (the rule self-interferes on `job.stage`).
/// Total commits = `jobs * stages`.
pub fn manufacturing(jobs: usize, stages: usize) -> (RuleSet, WorkingMemory) {
    let rules = RuleSet::parse(
        "(p advance (job ^stage <s>) (route ^from <s> ^to <n>)
           --> (modify 1 ^stage <n>))",
    )
    .expect("static workload parses");
    let mut wm = WorkingMemory::new();
    for s in 0..stages {
        wm.insert(
            WmeData::new("route")
                .with("from", s as i64)
                .with("to", (s + 1) as i64),
        );
    }
    for _ in 0..jobs {
        wm.insert(WmeData::new("job").with("stage", 0i64));
    }
    (rules, wm)
}

/// A workload with *relation-level false conflicts*: guards watch for the
/// absence of `alarm` tuples in their own zone (a negated CE, so their
/// `Rc` lock escalates to the whole `alarm` relation), while producers
/// insert alarms into a zone (999) that **no guard watches**. The
/// producers' `Wa` on the escalated relation overlaps every guard's `Rc`
/// even though no guard's condition is actually invalidated. Under
/// `AbortReaders` every such overlap kills the guards (who then retry);
/// under `Revalidate` the engine re-checks their instantiations, finds
/// them intact, and lets them commit. Exercises X3.
pub fn false_conflicts(guards: usize, events: usize) -> (RuleSet, WorkingMemory) {
    let rules = RuleSet::parse(
        "(p guard (watch ^id <w> ^armed true) -(alarm ^zone <w>) --> (modify 1 ^armed false))
         (p produce (pending ^id <e>) --> (remove 1) (make alarm ^zone 999 ^id <e>))",
    )
    .expect("static workload parses");
    let mut wm = WorkingMemory::new();
    for w in 0..guards {
        wm.insert(
            WmeData::new("watch")
                .with("id", w as i64)
                .with("armed", true),
        );
    }
    for e in 0..events {
        wm.insert(WmeData::new("pending").with("id", e as i64));
    }
    (rules, wm)
}

/// The streaming variant of [`false_conflicts`]: the same relation-level
/// false-conflict channel, kept *live* for the whole run. Each guard
/// counts its `watch` tuple down `g_steps` times (still under a negated
/// `alarm` CE, so its `Rc` escalates to the whole `alarm` relation);
/// each producer counts a `feed` tuple down `p_steps` times, making one
/// zone-999 alarm per step that no guard watches. Because both sides
/// advance by `modify` — remove + reinsert with *fresh recency* — their
/// instantiations keep leap-frogging each other in the conflict order,
/// so guard claims and producer commits genuinely overlap instead of
/// draining as two recency-sorted batches the way the one-shot workload
/// does. Under `AbortReaders` every overlapping producer commit dooms
/// the live guards (who redo their work); under MVCC the guards hold no
/// `Rc` at all and nothing is doomed. Total commits =
/// `guards * g_steps + producers * p_steps`, deterministically.
pub fn false_conflict_stream(
    guards: usize,
    g_steps: i64,
    producers: usize,
    p_steps: i64,
) -> (RuleSet, WorkingMemory) {
    let rules = RuleSet::parse(
        "(p guard (watch ^id <w> ^n { > 0 <n> }) -(alarm ^zone <w>)
           --> (modify 1 ^n (- <n> 1)))
         (p produce (feed ^id <f> ^n { > 0 <n> })
           --> (modify 1 ^n (- <n> 1)) (make alarm ^zone 999 ^src <f> ^step <n>))",
    )
    .expect("static workload parses");
    let mut wm = WorkingMemory::new();
    for w in 0..guards {
        wm.insert(
            WmeData::new("watch")
                .with("id", w as i64)
                .with("n", g_steps),
        );
    }
    for f in 0..producers {
        wm.insert(
            WmeData::new("feed")
                .with("id", f as i64)
                .with("n", p_steps),
        );
    }
    (rules, wm)
}

/// The coordination-avoidance workload: every rule is **provably
/// commutative**, yet under the §4 locking protocol the run is a
/// relation-lock convoy. `bump` delta-decrements `counters` `ctr`
/// tuples (`c_steps` each); `emit` delta-decrements `makers` `feed`
/// tuples and makes one `evt` per step into a class nobody reads.
///
/// * **Commute matrix**: `bump` RMW-writes the attribute it reads, so
///   it self-commutes; `emit`'s delta (`feed.n`) and insert (`evt`)
///   never meet its plain reads; the two rules share no class. Both
///   class-components elide.
/// * **Lock convoy (elision off)**: every `modify` escalates to its
///   class's relation `Wa` (serialising negated readers), so *all*
///   bumps queue on the `ctr` relation and *all* emits on `feed` +
///   `evt` — firings on disjoint tuples, serialised by two hot locks.
///   Elision removes exactly that convoy; nothing else changes.
///
/// Total commits = `counters * c_steps + makers * m_steps`,
/// deterministically, and the final WM is schedule-independent.
pub fn commute_stream(
    counters: usize,
    c_steps: i64,
    makers: usize,
    m_steps: i64,
) -> (RuleSet, WorkingMemory) {
    let rules = RuleSet::parse(
        "(p bump (ctr ^id <c> ^n { > 0 <n> }) --> (modify 1 ^n (- <n> 1)))
         (p emit (feed ^id <f> ^n { > 0 <n> })
           --> (modify 1 ^n (- <n> 1)) (make evt ^src <f> ^step <n>))",
    )
    .expect("static workload parses");
    let mut wm = WorkingMemory::new();
    for c in 0..counters {
        wm.insert(WmeData::new("ctr").with("id", c as i64).with("n", c_steps));
    }
    for f in 0..makers {
        wm.insert(WmeData::new("feed").with("id", f as i64).with("n", m_steps));
    }
    (rules, wm)
}

/// The **non-commutative pair** for the elision falsifiability probe:
/// `dec` delta-decrements `cell.n`; `tag` delta-increments `cell.hits`
/// but *plain-reads* `cell.n` through its guard, so the commute
/// judgment (correctly) refuses the pair — `dec` changes what `tag`'s
/// instantiation matched on. Forcing the pair through the lock-elision
/// fast path **with commit validation bypassed**
/// ([`dps_core::ParallelConfig::elide_misclassify`]) lets `tag` commit
/// a delta materialised from a tuple `dec` has already replaced — a
/// lost update the §3 serial-replay oracle must reject. `tag`'s own
/// budget (`hits < steps`) bounds the run either way.
pub fn misclassified_pair(cells: usize, steps: i64) -> (RuleSet, WorkingMemory) {
    let src = format!(
        "(p dec (cell ^n {{ > 0 <n> }}) --> (modify 1 ^n (- <n> 1)))
         (p tag (cell ^n {{ > 0 <n> }} ^hits {{ < {steps} <h> }})
           --> (modify 1 ^hits (+ <h> 1)))"
    );
    let rules = RuleSet::parse(&src).expect("static workload parses");
    let mut wm = WorkingMemory::new();
    for _ in 0..cells {
        wm.insert(WmeData::new("cell").with("n", steps).with("hits", 0i64));
    }
    (rules, wm)
}

/// A match-dominated workload: `groups` independent rule families, each
/// a wide fan-out join of one `cfg-g` tuple against `pairs` `item-g`
/// tuples, firing a cheap `make`-only RHS. Nothing is ever removed or
/// modified, so
///
/// * the conflict set holds `groups * pairs` live instantiations for the
///   whole run (every fired one stays satisfied, held back only by
///   refraction) — the claim scan's refracted prefix grows linearly and
///   total scan work grows quadratically, making **match cost, not lock
///   contention, the measured axis** (there are zero conflict aborts);
/// * the class families are disjoint (`cfg-g`/`item-g`/`out-g` appear in
///   exactly one rule), so the rule partition yields `groups`
///   class-connected components — ideal fodder for match sharding.
///
/// Total commits = `groups * pairs`, deterministically.
pub fn match_heavy(groups: usize, pairs: usize) -> (RuleSet, WorkingMemory) {
    let mut src = String::new();
    for g in 0..groups {
        src.push_str(&format!(
            "(p fan-{g} (cfg-{g} ^on true) (item-{g} ^id <i>) --> (make out-{g} ^id <i>))\n"
        ));
    }
    let rules = RuleSet::parse(&src).expect("static workload parses");
    let mut wm = WorkingMemory::new();
    for g in 0..groups {
        wm.insert(WmeData::new(format!("cfg-{g}")).with("on", true));
        for i in 0..pairs {
            wm.insert(WmeData::new(format!("item-{g}")).with("id", i as i64));
        }
    }
    (rules, wm)
}

/// A full order-fulfillment pipeline — the richest workload in the
/// suite, exercising multi-way joins, arithmetic, salience, negation and
/// value disjunctions together. `fulfillable` orders flow
/// `received → reserved → picked → packed → shipped` (4 commits each);
/// `backordered` orders ask for an item with no stock and flow
/// `received → backordered` plus one audit (2 commits each).
///
/// Total commits = `4 * fulfillable + 2 * backordered`, and the final
/// state is deterministic (stock covers all fulfillable demand).
pub fn order_fulfillment(fulfillable: usize, backordered: usize) -> (RuleSet, WorkingMemory) {
    let rules = RuleSet::parse(
        r#"
        ; Rush orders reserve first (salience), but every order reserves.
        (p reserve-rush (salience 10)
           (order ^state received ^priority << rush urgent >> ^item <i> ^qty <q>)
           (stock ^item <i> ^on-hand >= <q> ^on-hand <s>)
           -->
           (modify 1 ^state reserved)
           (modify 2 ^on-hand (- <s> <q>)))

        (p reserve
           (order ^state received ^item <i> ^qty <q>)
           (stock ^item <i> ^on-hand >= <q> ^on-hand <s>)
           -->
           (modify 1 ^state reserved)
           (modify 2 ^on-hand (- <s> <q>)))

        (p backorder
           (order ^state received ^id <id> ^item <i> ^qty <q>)
           (stock ^item <i> ^on-hand < <q>)
           -->
           (modify 1 ^state backordered))

        (p audit-backorder
           (order ^state backordered ^id <id>)
           -(audit ^order <id>)
           -->
           (make audit ^order <id>))

        (p pick
           (order ^state reserved)
           -->
           (modify 1 ^state picked))

        (p pack
           (order ^state picked ^id <id> ^qty <q>)
           -->
           (modify 1 ^state packed)
           (make package ^order <id> ^weight (* <q> 2)))

        (p ship
           (order ^state packed ^id <id>)
           (package ^order <id>)
           -->
           (modify 1 ^state shipped))
        "#,
    )
    .expect("static workload parses");
    let mut wm = WorkingMemory::new();
    let total_demand: i64 = (1..=fulfillable as i64).sum();
    wm.insert(
        WmeData::new("stock")
            .with("item", "widget")
            .with("on-hand", total_demand),
    );
    wm.insert(
        WmeData::new("stock")
            .with("item", "unobtainium")
            .with("on-hand", 0i64),
    );
    for i in 0..fulfillable {
        wm.insert(
            WmeData::new("order")
                .with("id", i as i64)
                .with("item", "widget")
                .with("qty", (i + 1) as i64)
                .with("state", "received")
                .with("priority", if i % 3 == 0 { "rush" } else { "normal" }),
        );
    }
    for i in 0..backordered {
        wm.insert(
            WmeData::new("order")
                .with("id", (1000 + i) as i64)
                .with("item", "unobtainium")
                .with("qty", 1i64)
                .with("state", "received")
                .with("priority", "normal"),
        );
    }
    (rules, wm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dps_core::{EngineConfig, SingleThreadEngine};

    #[test]
    fn counters_commit_count() {
        let (rules, wm) = counters(3, 4);
        let mut e = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
        assert_eq!(e.run().commits, 12);
    }

    #[test]
    fn hot_accumulator_total() {
        let (rules, wm) = hot_accumulator(5);
        let mut e = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
        assert_eq!(e.run().commits, 5);
        let acc = e.wm().class_iter("acc").next().unwrap();
        assert_eq!(acc.get("total"), Some(&dps_wm::Value::Int(15)));
    }

    #[test]
    fn shared_resources_commit_count() {
        let (rules, wm) = shared_resources(6, 2);
        let mut e = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
        assert_eq!(e.run().commits, 6);
        for tally in e.wm().class_iter("tally") {
            assert_eq!(tally.get("count"), Some(&dps_wm::Value::Int(3)));
        }
    }

    #[test]
    fn manufacturing_jobs_reach_final_stage() {
        let (rules, wm) = manufacturing(3, 4);
        let mut e = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
        assert_eq!(e.run().commits, 12);
        for job in e.wm().class_iter("job") {
            assert_eq!(job.get("stage"), Some(&dps_wm::Value::Int(4)));
        }
    }

    #[test]
    fn match_heavy_commit_count() {
        let (rules, wm) = match_heavy(4, 3);
        let mut e = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
        assert_eq!(e.run().commits, 12);
        for g in 0..4 {
            assert_eq!(e.wm().class_iter(&format!("out-{g}")).count(), 3);
        }
    }

    #[test]
    fn order_fulfillment_lifecycle() {
        let (rules, wm) = order_fulfillment(4, 2);
        let mut e = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
        let r = e.run();
        assert_eq!(r.commits, 4 * 4 + 2 * 2);
        let shipped = e
            .wm()
            .class_iter("order")
            .filter(|w| w.get("state").and_then(|v| v.as_text()) == Some("shipped"))
            .count();
        assert_eq!(shipped, 4);
        let backordered = e
            .wm()
            .class_iter("order")
            .filter(|w| w.get("state").and_then(|v| v.as_text()) == Some("backordered"))
            .count();
        assert_eq!(backordered, 2);
        assert_eq!(e.wm().class_iter("audit").count(), 2);
        assert_eq!(e.wm().class_iter("package").count(), 4);
        // All widget stock consumed.
        let stock = e
            .wm()
            .class_iter("stock")
            .find(|w| w.get("item").and_then(|v| v.as_text()) == Some("widget"))
            .unwrap();
        assert_eq!(stock.get("on-hand"), Some(&dps_wm::Value::Int(0)));
    }

    #[test]
    fn false_conflicts_guards_and_events() {
        let (rules, wm) = false_conflicts(2, 3);
        let mut e = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
        let r = e.run();
        // 2 guards (each disarms itself) + 3 produces; zone-999 alarms
        // match no guard's negated CE.
        assert_eq!(r.commits, 5);
        assert_eq!(e.wm().class_iter("alarm").count(), 3);
    }

    #[test]
    fn commute_stream_counts() {
        let (rules, wm) = commute_stream(3, 4, 2, 5);
        let mut e = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
        let r = e.run();
        assert_eq!(r.commits, 3 * 4 + 2 * 5);
        assert_eq!(e.wm().class_iter("evt").count(), 10);
        for w in e.wm().class_iter("ctr").chain(e.wm().class_iter("feed")) {
            assert_eq!(w.get("n"), Some(&dps_wm::Value::Int(0)));
        }
    }

    #[test]
    fn misclassified_pair_is_bounded_and_serially_valid() {
        let (rules, wm) = misclassified_pair(2, 3);
        let mut e = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
        let r = e.run();
        // dec fully drains both cells; tag's budget caps it at `steps`
        // per cell but n may hit 0 first, ending tag early.
        assert!(r.commits >= 2 * 3 && r.commits <= 2 * 3 * 2);
        for w in e.wm().class_iter("cell") {
            assert_eq!(w.get("n"), Some(&dps_wm::Value::Int(0)));
        }
    }

    #[test]
    fn false_conflict_stream_counts() {
        let (rules, wm) = false_conflict_stream(2, 3, 2, 4);
        let mut e = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
        let r = e.run();
        assert_eq!(r.commits, 2 * 3 + 2 * 4);
        assert_eq!(e.wm().class_iter("alarm").count(), 8);
        for w in e.wm().class_iter("watch").chain(e.wm().class_iter("feed")) {
            assert_eq!(w.get("n"), Some(&dps_wm::Value::Int(0)));
        }
    }
}
