//! Coordination-avoidance A/B gate: the full §4 locking protocol
//! versus the lock-elision fast path for provably-commutative firings.
//!
//! The gate's claim is the tentpole property of the commute matrix
//! ([`dps_rules::analysis::commutes`] folded per class-component by the
//! shard planner): on a workload where **every** rule is provably
//! commutative — [`workloads::commute_stream`], counter bumps plus
//! disjoint makes, which the locking protocol serialises on two hot
//! relation `Wa` locks — the `elide_locks` engine
//!
//! * acquires **zero** locks (grants *and* blocks are zero; every skip
//!   is booked in `LockStats::elided` and receipted per commit as an
//!   `ElidedCommit` event),
//! * shows **~zero blocked-ns** in the per-resource contention table
//!   (the convoy is gone, not moved), and
//! * commits **≥ 1.5×** the locking leg's throughput at 8 workers,
//!   while
//! * both legs still drain to the exact expected commit count and
//!   replay through the §3 single-thread oracle, with well-formed
//!   histories.
//!
//! Two **falsifiability probes** keep the oracle honest. First, a
//! deliberately *misclassified* non-commutative pair
//! ([`workloads::misclassified_pair`]) is forced through the fast path
//! with commit validation bypassed
//! ([`ParallelConfig::elide_misclassify`]) — the manufactured lost
//! update must be *rejected* by serial replay, proving the gate can
//! fail and that commit-time validation (not luck) is what makes
//! elision safe. Second, at the trace level: swapping two adjacent
//! firings of the non-commutative pair must be rejected, while swapping
//! two adjacent firings of commutative rules on disjoint tuples must be
//! accepted — the oracle distinguishes real reordering freedom from
//! fake. The `commute` binary drives this module and emits the
//! `dps-commute-report-v1` document `obs_check` shape-checks in CI.

use std::time::Instant;

use dps_core::semantics::validate_trace;
use dps_core::{AbortStats, ParallelConfig, ParallelEngine, WorkModel};
use dps_lock::Protocol;
use dps_obs::analysis::{analyze, ResourceContention, Verdict};
use dps_obs::json::Json;
use dps_obs::{validate_history, TelemetryConfig, TimelineDoc};

use crate::workloads;

/// Shape of the A/B measurement (both legs share it).
#[derive(Clone, Debug)]
pub struct CommuteSpec {
    /// Report provenance (the workload itself is deterministic; the
    /// seed shapes the matrix variants in `tests/commute.rs`).
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
    /// Match shards.
    pub match_shards: usize,
    /// Counters in [`workloads::commute_stream`].
    pub counters: usize,
    /// Decrements per counter.
    pub c_steps: i64,
    /// Make-producers in the workload.
    pub makers: usize,
    /// Makes per producer.
    pub m_steps: i64,
    /// Simulated RHS cost, microseconds ([`WorkModel::BusyMicros`] —
    /// the paper's CPU-bound RHS. On an oversubscribed machine spinning
    /// workers get preempted *inside* the lock manager's critical
    /// sections and wait queues, which is what turns the relation-`Wa`
    /// commit convoy into real wall-clock; the elided leg has no
    /// critical sections to be preempted in.)
    pub work_us: u64,
}

impl CommuteSpec {
    /// Expected commits: every counter and every producer drains.
    pub fn expected_commits(&self) -> usize {
        self.counters * self.c_steps as usize + self.makers * self.m_steps as usize
    }
}

/// One leg of the A/B: everything the gate and the report need.
#[derive(Clone, Debug)]
pub struct CommuteLeg {
    /// Whether this leg ran with lock elision.
    pub elide: bool,
    /// Committed transactions.
    pub commits: usize,
    /// Expected commits (drain target).
    pub expected: usize,
    /// Full abort breakdown.
    pub aborts: AbortStats,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Lock grants (must be 0 on the elided leg).
    pub lock_grants: u64,
    /// Lock blocks (must be 0 on the elided leg).
    pub lock_blocks: u64,
    /// Acquisitions skipped by the fast path (0 on the locking leg).
    pub lock_elided: u64,
    /// `ElidedCommit` receipts in the history.
    pub elided_commits: u64,
    /// Per-resource contention table, blocked-ns descending.
    pub contention: Vec<ResourceContention>,
    /// Structural errors from history validation + analysis.
    pub structural_errors: Vec<String>,
    /// §3 replay result label: "consistent" / "violation" / "not-run".
    pub replay: &'static str,
    /// Folded verdict: structural + replay.
    pub verdict: Verdict,
    /// Live-telemetry timeline (`lock.elided` vs `lock.grants` series
    /// are the A/B's visual evidence).
    pub timeline: Option<TimelineDoc>,
}

impl CommuteLeg {
    /// `true` iff the leg drained and every checker accepted it.
    pub fn passes(&self) -> bool {
        self.commits == self.expected && self.verdict == Verdict::Consistent
    }

    /// Commits per wall-clock second.
    pub fn throughput(&self) -> f64 {
        self.commits as f64 / self.secs.max(1e-9)
    }

    /// Total nanoseconds spent queued on locks, summed over resources.
    pub fn blocked_ns(&self) -> u64 {
        self.contention.iter().map(|r| r.blocked_ns).sum()
    }

    /// JSON block for the report.
    pub fn to_json(&self) -> Json {
        let contention = Json::Arr(
            self.contention
                .iter()
                .take(8)
                .map(|r| {
                    Json::Obj(vec![
                        ("resource".into(), Json::u64(r.resource)),
                        ("blocks".into(), Json::u64(r.blocks)),
                        ("blocked_ns".into(), Json::u64(r.blocked_ns)),
                        ("dooms_caused".into(), Json::u64(r.dooms_caused)),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            (
                "mode".into(),
                Json::str(if self.elide { "elided" } else { "locked" }),
            ),
            ("commits".into(), Json::u64(self.commits as u64)),
            ("expected_commits".into(), Json::u64(self.expected as u64)),
            ("throughput".into(), Json::num(self.throughput())),
            ("secs".into(), Json::num(self.secs)),
            (
                "aborts".into(),
                Json::Obj(vec![
                    ("doomed".into(), Json::u64(self.aborts.doomed)),
                    ("deadlock".into(), Json::u64(self.aborts.deadlock)),
                    ("stale".into(), Json::u64(self.aborts.stale)),
                    ("revalidation".into(), Json::u64(self.aborts.revalidation)),
                    ("eval_error".into(), Json::u64(self.aborts.eval_error)),
                    ("timeout".into(), Json::u64(self.aborts.timeout)),
                    ("injected".into(), Json::u64(self.aborts.injected)),
                    (
                        "snapshot_stale".into(),
                        Json::u64(self.aborts.snapshot_stale),
                    ),
                    ("elision_stale".into(), Json::u64(self.aborts.elision_stale)),
                    ("total".into(), Json::u64(self.aborts.total())),
                ]),
            ),
            ("lock_grants".into(), Json::u64(self.lock_grants)),
            ("lock_blocks".into(), Json::u64(self.lock_blocks)),
            ("lock_elided".into(), Json::u64(self.lock_elided)),
            ("elided_commits".into(), Json::u64(self.elided_commits)),
            ("blocked_ns".into(), Json::u64(self.blocked_ns())),
            ("contention".into(), contention),
            (
                "checker".into(),
                Json::Obj(vec![
                    (
                        "structural_errors".into(),
                        Json::u64(self.structural_errors.len() as u64),
                    ),
                    ("replay".into(), Json::str(self.replay)),
                    ("verdict".into(), Json::str(self.verdict.name())),
                ]),
            ),
        ])
    }
}

/// Runs one leg end-to-end: engine → history validation → §3 replay →
/// contention attribution. Mirrors [`crate::mvcc::mvcc_leg`] but the
/// measured axis is lock traffic, not read-path aborts.
pub fn commute_leg(spec: &CommuteSpec, elide: bool) -> CommuteLeg {
    let (rules, wm) =
        workloads::commute_stream(spec.counters, spec.c_steps, spec.makers, spec.m_steps);
    let initial = wm.clone();
    let mut engine = ParallelEngine::new(
        &rules,
        wm,
        ParallelConfig {
            protocol: Protocol::RcRaWa,
            workers: spec.workers,
            match_shards: spec.match_shards,
            work: WorkModel::BusyMicros(spec.work_us),
            observe: true,
            elide_locks: elide,
            telemetry: Some(TelemetryConfig::default()),
            stop: dps_server::shutdown::installed(),
            ..Default::default()
        },
    );
    let t0 = Instant::now();
    let report = engine.run();
    let secs = t0.elapsed().as_secs_f64();

    let rec = engine.observer().expect("observe: true attaches a recorder");
    let history = rec.history();
    let mut structural_errors: Vec<String> = Vec::new();
    if let Err(e) = validate_history(&history) {
        structural_errors.push(format!("history: {e}"));
    }
    let mut analysis = analyze(&history);
    analysis.set_replay_result(
        validate_trace(&rules, &initial, &report.trace).map_err(|v| v.to_string()),
    );
    structural_errors.extend(analysis.checker.structural_errors.iter().cloned());
    let replay = match &analysis.checker.replay_result {
        None => "not-run",
        Some(Ok(())) => "consistent",
        Some(Err(_)) => "violation",
    };
    let verdict = if structural_errors.is_empty() && analysis.verdict() == Verdict::Consistent {
        Verdict::Consistent
    } else {
        Verdict::Inconsistent
    };

    CommuteLeg {
        elide,
        commits: report.commits,
        expected: spec.expected_commits(),
        aborts: report.aborts,
        secs,
        lock_grants: report.lock_stats.grants,
        lock_blocks: report.lock_stats.blocks,
        lock_elided: report.lock_stats.elided,
        elided_commits: rec.report().elided_commits,
        contention: analysis.contention.clone(),
        structural_errors,
        replay,
        verdict,
        timeline: engine.telemetry().map(|t| t.doc()),
    }
}

/// Falsifiability probe 1: the **misclassified pair**. The
/// non-commutative [`workloads::misclassified_pair`] rules are forced
/// through the fast path with commit validation bypassed; with real
/// concurrency the `tag` rule commits deltas materialised from tuples
/// `dec` already replaced — lost updates. Returns `true` iff the §3
/// serial-replay oracle *rejected* the run (the probe's pass
/// condition). The commit cap bounds the run: lost updates can
/// resurrect counter values, so the drain target itself is unreliable
/// here — which is exactly the corruption the oracle exists to catch.
pub fn probe_misclassification(workers: usize, work_us: u64) -> bool {
    let (rules, wm) = workloads::misclassified_pair(1, 64);
    let initial = wm.clone();
    let mut engine = ParallelEngine::new(
        &rules,
        wm,
        ParallelConfig {
            protocol: Protocol::RcRaWa,
            workers,
            work: WorkModel::BusyMicros(work_us),
            max_commits: 512,
            elide_locks: true,
            elide_misclassify: true,
            stop: dps_server::shutdown::installed(),
            ..Default::default()
        },
    );
    let report = engine.run();
    validate_trace(&rules, &initial, &report.trace).is_err()
}

/// Falsifiability probe 2, trace level: swapped delta order. Returns
/// `(noncommutative_rejected, commutative_accepted)`:
///
/// * a serial run of the non-commutative pair on **one** cell, with its
///   first two firings swapped, must be *rejected* — the second firing
///   was matched on a tuple the first one produced;
/// * a serial run of commutative bumps on **two disjoint** cells, with
///   its two firings swapped, must be *accepted* — both instantiations
///   exist in the initial conflict set, so either order replays.
pub fn probe_swapped_order() -> (bool, bool) {
    let noncommutative_rejected = {
        let (rules, wm) = workloads::misclassified_pair(1, 2);
        let initial = wm.clone();
        let mut engine = ParallelEngine::new(
            &rules,
            wm,
            ParallelConfig {
                workers: 1,
                ..Default::default()
            },
        );
        let mut report = engine.run();
        assert!(report.trace.firings.len() >= 2, "serial run fires at least twice");
        validate_trace(&rules, &initial, &report.trace).expect("unswapped trace replays");
        report.trace.firings.swap(0, 1);
        validate_trace(&rules, &initial, &report.trace).is_err()
    };
    let commutative_accepted = {
        let (rules, wm) = workloads::counters(2, 1);
        let initial = wm.clone();
        let mut engine = ParallelEngine::new(
            &rules,
            wm,
            ParallelConfig {
                workers: 1,
                ..Default::default()
            },
        );
        let mut report = engine.run();
        assert_eq!(report.trace.firings.len(), 2);
        report.trace.firings.swap(0, 1);
        validate_trace(&rules, &initial, &report.trace).is_ok()
    };
    (noncommutative_rejected, commutative_accepted)
}

/// Gate booleans, computed once and shared by the document and the
/// binary's exit code.
#[derive(Clone, Copy, Debug)]
pub struct CommuteGates {
    /// Elided-leg throughput / locked-leg throughput.
    pub speedup: f64,
    /// `speedup >= 1.5` (the ISSUE's A/B bar at 8 workers).
    pub speedup_ok: bool,
    /// Elided leg acquired zero locks: no grants, no blocks, every
    /// skip booked, every commit receipted.
    pub zero_lock_traffic: bool,
    /// Elided leg's contention table carries ~zero blocked-ns.
    pub blocked_ns_zero: bool,
    /// Both legs drained and replayed through the §3 oracle.
    pub oracle: bool,
    /// The forced-misclassification run was rejected by the oracle.
    pub misclassification_rejected: bool,
    /// Swapped non-commutative order rejected, commutative accepted.
    pub swap_probes: bool,
}

impl CommuteGates {
    /// Evaluates the gates over the two legs and the probes.
    pub fn evaluate(
        locked: &CommuteLeg,
        elided: &CommuteLeg,
        misclassification_rejected: bool,
        swap: (bool, bool),
    ) -> Self {
        let speedup = elided.throughput() / locked.throughput().max(1e-9);
        CommuteGates {
            speedup,
            speedup_ok: speedup >= 1.5,
            zero_lock_traffic: elided.lock_grants == 0
                && elided.lock_blocks == 0
                && elided.lock_elided > 0
                && elided.elided_commits == elided.commits as u64,
            blocked_ns_zero: elided.blocked_ns() == 0,
            oracle: locked.passes() && elided.passes(),
            misclassification_rejected,
            swap_probes: swap.0 && swap.1,
        }
    }

    /// All gates green.
    pub fn all(&self) -> bool {
        self.speedup_ok
            && self.zero_lock_traffic
            && self.blocked_ns_zero
            && self.oracle
            && self.misclassification_rejected
            && self.swap_probes
    }
}

/// Assembles the `dps-commute-report-v1` document.
pub fn commute_document(
    spec: &CommuteSpec,
    locked: &CommuteLeg,
    elided: &CommuteLeg,
    gates: &CommuteGates,
) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::str("dps-commute-report-v1")),
        ("seed".into(), Json::u64(spec.seed)),
        (
            "workload".into(),
            Json::Obj(vec![
                ("name".into(), Json::str("commute_stream")),
                ("counters".into(), Json::u64(spec.counters as u64)),
                ("counter_steps".into(), Json::u64(spec.c_steps as u64)),
                ("makers".into(), Json::u64(spec.makers as u64)),
                ("maker_steps".into(), Json::u64(spec.m_steps as u64)),
                ("work_us".into(), Json::u64(spec.work_us)),
                ("workers".into(), Json::u64(spec.workers as u64)),
                ("match_shards".into(), Json::u64(spec.match_shards as u64)),
            ]),
        ),
        ("locked".into(), locked.to_json()),
        ("elided".into(), elided.to_json()),
        // The elided leg's sampled series: `lock.elided` climbing while
        // `lock.grants` stays flat is the timeline's A/B evidence.
        (
            "timeline".into(),
            elided
                .timeline
                .as_ref()
                .map_or(Json::Null, TimelineDoc::to_json),
        ),
        (
            "probes".into(),
            Json::Obj(vec![
                (
                    "misclassification_rejected".into(),
                    Json::Bool(gates.misclassification_rejected),
                ),
                ("swap_probes_hold".into(), Json::Bool(gates.swap_probes)),
            ]),
        ),
        (
            "gates".into(),
            Json::Obj(vec![
                ("speedup".into(), Json::num(gates.speedup)),
                ("speedup_ok".into(), Json::Bool(gates.speedup_ok)),
                (
                    "zero_lock_traffic".into(),
                    Json::Bool(gates.zero_lock_traffic),
                ),
                ("blocked_ns_zero".into(), Json::Bool(gates.blocked_ns_zero)),
                ("oracle".into(), Json::Bool(gates.oracle)),
                (
                    "misclassification_rejected".into(),
                    Json::Bool(gates.misclassification_rejected),
                ),
                ("swap_probes".into(), Json::Bool(gates.swap_probes)),
            ]),
        ),
        (
            "verdict".into(),
            Json::str(if gates.all() { "consistent" } else { "inconsistent" }),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_probes_hold() {
        let (noncomm, comm) = probe_swapped_order();
        assert!(noncomm, "swapped non-commutative order must be rejected");
        assert!(comm, "swapped disjoint commutative order must be accepted");
    }

    #[test]
    fn misclassification_probe_is_rejected() {
        assert!(
            probe_misclassification(8, 200),
            "forced misclassification must surface as an oracle violation"
        );
    }

    #[test]
    fn quick_ab_clears_the_structural_gates() {
        // A scaled-down version of what the `commute` binary runs in
        // CI. The throughput bar is asserted only in the full-size CI
        // run — at this size the convoy is too short to measure — but
        // every structural gate must hold at any size.
        let spec = CommuteSpec {
            seed: 0xC0,
            workers: 4,
            match_shards: 2,
            counters: 4,
            c_steps: 4,
            makers: 2,
            m_steps: 4,
            work_us: 100,
        };
        let locked = commute_leg(&spec, false);
        let elided = commute_leg(&spec, true);
        let gates = CommuteGates::evaluate(&locked, &elided, true, (true, true));
        assert!(gates.oracle, "both legs drain + replay");
        assert!(
            gates.zero_lock_traffic,
            "grants {} blocks {} elided {} receipts {}",
            elided.lock_grants, elided.lock_blocks, elided.lock_elided, elided.elided_commits
        );
        assert!(gates.blocked_ns_zero, "blocked {}ns", elided.blocked_ns());
        assert!(locked.lock_grants > 0, "locking leg actually locks");
        assert_eq!(locked.lock_elided, 0, "locking leg never skips");
    }
}
