//! # `dps-bench` — workloads, benches and the paper-reproduction binary
//!
//! Shared synthetic workloads used by the benches (driven by the
//! dependency-free Criterion-shaped [`harness`]) and by the `repro`
//! binary (`cargo run -p dps-bench --bin repro --release`), which
//! prints every table and figure of the paper next to the measured
//! values. The `scaling` binary runs the worker-count scalability sweep
//! and the `analyze` binary the trace-analysis pipeline ([`analysis`]).
//! See `EXPERIMENTS.md` at the workspace root for the index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod chaos;
pub mod harness;
pub mod workloads;
