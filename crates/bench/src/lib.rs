//! # `dps-bench` — workloads, benches and the paper-reproduction binary
//!
//! Shared synthetic workloads used by the benches (driven by the
//! dependency-free Criterion-shaped [`harness`]) and by the `repro`
//! binary (`cargo run -p dps-bench --bin repro --release`), which
//! prints every table and figure of the paper next to the measured
//! values. The `scaling` binary runs the worker-count scalability sweep
//! and the `analyze` binary the trace-analysis pipeline ([`analysis`]).
//! See `EXPERIMENTS.md` at the workspace root for the index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod chaos;
pub mod commute;
pub mod diff;
pub mod harness;
pub mod mvcc;
pub mod recovery;
pub mod server_load;
pub mod workloads;

/// Value of a `--bench-out PATH` flag, shared by the gate binaries:
/// when present, the binary writes its JSON report document to `PATH`
/// (in addition to the usual `--json` stdout behaviour), so CI and
/// local runs can snapshot `BENCH_*.json` artifacts without shell
/// redirection.
pub fn bench_out_path(args: &[String]) -> Option<String> {
    args.iter()
        .position(|a| a == "--bench-out")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Writes a report document to the `--bench-out` target, if one was
/// given. Failures are fatal: a gate that silently drops its artifact
/// would let CI pass on a missing report.
pub fn write_bench_out(args: &[String], doc: &dps_obs::json::Json) {
    if let Some(path) = bench_out_path(args) {
        std::fs::write(&path, format!("{}\n", doc.to_string_pretty()))
            .unwrap_or_else(|e| panic!("writing --bench-out {path}: {e}"));
        eprintln!("bench-out: wrote {path}");
    }
}
