//! Chaos-gate harness: fault-injected dynamic-engine runs that must
//! still replay consistently.
//!
//! The gate's claim is the robustness version of Theorem 2: *under any
//! seeded [`FaultPlan`]* — grant delays, spurious wakeups, forced
//! aborts, mid-RHS stalls, timeout storms — every run that survives to
//! quiescence still drains its whole workload and its commit sequence
//! still replays through the single-thread oracle (`ES_M ⊆
//! ES_single`). The harness runs the sweep (named plans × conflict
//! policies × worker counts), plus:
//!
//! * a **falsifiability probe**: the same pipeline with
//!   [`FaultPlan::corrupt_fire_seq`] set and an odd commit count must
//!   be *rejected* by the checker (the low-bit flip breaks `0..n`
//!   contiguity of the recovered sequence), proving the oracle can
//!   actually fail;
//! * a **governor A/B**: the doom-storm plan with the adaptive retry
//!   governor off vs on, so the report carries the degradation story
//!   (throughput, aborts, wasted work) for experiment XS.3.
//!
//! The `chaos` binary drives this module; `obs_check` shape-checks the
//! emitted `dps-chaos-report-v1` document in CI.

use std::time::Instant;

use dps_core::semantics::validate_trace;
use dps_core::{GovernorConfig, GovernorStats, ParallelConfig, ParallelEngine, WorkModel};
use dps_lock::{ConflictPolicy, FaultPlan, FaultStats, Protocol};
use dps_obs::analysis::{analyze, Verdict};
use dps_obs::json::Json;
use dps_obs::{validate_history, TelemetryConfig, TimelineDoc};

use crate::workloads;

/// Stable name for a conflict policy (JSON key and CLI label).
pub fn policy_name(p: ConflictPolicy) -> &'static str {
    match p {
        ConflictPolicy::AbortReaders => "abort_readers",
        ConflictPolicy::Revalidate => "revalidate",
        ConflictPolicy::MvccSnapshot => "mvcc_snapshot",
    }
}

/// The policies the chaos sweep crosses with every fault plan: both
/// lock-based commit rules plus the MVCC snapshot read path.
pub const SWEEP_POLICIES: [ConflictPolicy; 3] = [
    ConflictPolicy::AbortReaders,
    ConflictPolicy::Revalidate,
    ConflictPolicy::MvccSnapshot,
];

/// Shape of one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosSpec {
    /// Label of the fault plan (one of [`FaultPlan::NAMED`], or
    /// "corrupted" for the falsifiability probe).
    pub plan: &'static str,
    /// The fault plan itself.
    pub fault: FaultPlan,
    /// Commit-time `Rc`–`Wa` policy.
    pub policy: ConflictPolicy,
    /// Worker threads.
    pub workers: usize,
    /// Tasks in the `shared_resources` workload (= expected commits).
    pub tasks: usize,
    /// Shared tallies (contention knob).
    pub resources: usize,
    /// Simulated RHS cost, microseconds.
    pub work_us: u64,
    /// `true`: CPU-bound RHS ([`WorkModel::BusyMicros`] — aborted work
    /// costs wall-clock on an oversubscribed machine); `false`:
    /// I/O-bound ([`WorkModel::FixedMicros`], a sleep).
    pub busy: bool,
    /// Adaptive retry governor (`None`: off).
    pub governor: Option<GovernorConfig>,
    /// Attach the live-telemetry sampler (default tick) and carry its
    /// `dps-timeline-v1` document in [`ChaosRun::timeline`].
    pub telemetry: bool,
}

/// Outcome of one chaos run, everything the gate and the report need.
#[derive(Clone, Debug)]
pub struct ChaosRun {
    /// The spec that produced it.
    pub spec: ChaosSpec,
    /// Committed transactions.
    pub commits: usize,
    /// Aborts, total.
    pub aborts: u64,
    /// Aborts with the injected cause (must equal forced-abort count).
    pub injected_aborts: u64,
    /// Condition-reader aborts (dooms + revalidation failures) — the
    /// channel [`ConflictPolicy::MvccSnapshot`] eliminates.
    pub reader_aborts: u64,
    /// MVCC commit-time self-validation failures (zero outside
    /// `mvcc_snapshot` runs).
    pub snapshot_stale: u64,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Wasted (aborted) simulated work, milliseconds.
    pub wasted_ms: f64,
    /// Injection counters.
    pub faults: FaultStats,
    /// Governor counters, when one was attached.
    pub governor: Option<GovernorStats>,
    /// Structural errors found by the §3 checker (count + samples).
    pub structural_errors: Vec<String>,
    /// Replay result label: "consistent" / "violation" / "not-run".
    pub replay: &'static str,
    /// SI/serializability polygraph verdict, when the history carried
    /// snapshot events (`None` on lock-based runs — nothing to check).
    pub si: Option<Verdict>,
    /// Overall checker verdict.
    pub verdict: Verdict,
    /// `true` iff the run drained every task (liveness).
    pub drained: bool,
    /// Sampled timeline, when [`ChaosSpec::telemetry`] was set.
    pub timeline: Option<TimelineDoc>,
}

impl ChaosRun {
    /// The gate predicate for *surviving* (non-corrupted) runs.
    pub fn passes(&self) -> bool {
        self.drained && self.verdict == Verdict::Consistent && self.injected_aborts == self.faults.forced_aborts
    }

    /// Per-run JSON object for the `dps-chaos-report-v1` document.
    pub fn to_json(&self) -> Json {
        let gov = match &self.governor {
            None => Json::Null,
            Some(g) => Json::Obj(vec![
                ("escalations".into(), Json::u64(g.escalations)),
                ("serializations".into(), Json::u64(g.serializations)),
                ("deescalations".into(), Json::u64(g.deescalations)),
                ("backoffs".into(), Json::u64(g.backoffs)),
            ]),
        };
        Json::Obj(vec![
            ("plan".into(), Json::str(self.spec.plan)),
            ("policy".into(), Json::str(policy_name(self.spec.policy))),
            ("workers".into(), Json::u64(self.spec.workers as u64)),
            ("commits".into(), Json::u64(self.commits as u64)),
            (
                "expected_commits".into(),
                Json::u64(self.spec.tasks as u64),
            ),
            ("aborts".into(), Json::u64(self.aborts)),
            ("injected_aborts".into(), Json::u64(self.injected_aborts)),
            ("reader_aborts".into(), Json::u64(self.reader_aborts)),
            ("snapshot_stale_aborts".into(), Json::u64(self.snapshot_stale)),
            ("faults_injected".into(), Json::u64(self.faults.total())),
            ("secs".into(), Json::num(self.secs)),
            ("wasted_ms".into(), Json::num(self.wasted_ms)),
            ("governor".into(), gov),
            (
                "checker".into(),
                Json::Obj(vec![
                    (
                        "structural_errors".into(),
                        Json::u64(self.structural_errors.len() as u64),
                    ),
                    ("replay".into(), Json::str(self.replay)),
                    (
                        "si".into(),
                        match self.si {
                            Some(v) => Json::str(v.name()),
                            None => Json::Null,
                        },
                    ),
                    ("verdict".into(), Json::str(self.verdict.name())),
                ]),
            ),
        ])
    }
}

/// Runs one chaos spec end-to-end: engine → history validation →
/// checker recovery → trace cross-check → §3 replay. Never panics on
/// an inconsistent outcome (the falsifiability probe *wants* one); the
/// verdict is returned for the gate to judge.
pub fn chaos_run(spec: ChaosSpec) -> ChaosRun {
    let (rules, wm) = workloads::shared_resources(spec.tasks, spec.resources);
    let initial = wm.clone();
    let mut engine = ParallelEngine::new(
        &rules,
        wm,
        ParallelConfig {
            protocol: Protocol::RcRaWa,
            policy: spec.policy,
            workers: spec.workers,
            work: if spec.busy {
                WorkModel::BusyMicros(spec.work_us)
            } else {
                WorkModel::FixedMicros(spec.work_us)
            },
            observe: true,
            fault: Some(spec.fault.clone()),
            governor: spec.governor.clone(),
            telemetry: spec.telemetry.then(TelemetryConfig::default),
            stop: dps_server::shutdown::installed(),
            ..Default::default()
        },
    );
    let t0 = Instant::now();
    let report = engine.run();
    let secs = t0.elapsed().as_secs_f64();

    let rec = engine.observer().expect("observe: true attaches a recorder");
    let history = rec.history();
    let mut structural_errors: Vec<String> = Vec::new();
    if let Err(e) = validate_history(&history) {
        structural_errors.push(format!("history: {e}"));
    }
    let mut analysis = analyze(&history);

    // Cross-check the recovered rule sequence against the engine trace.
    let rule_names = rec.rule_names();
    let recovered: Vec<&str> = analysis
        .checker
        .rule_sequence()
        .iter()
        .map(|&id| rule_names.get(id as usize).map(String::as_str).unwrap_or("?"))
        .collect();
    if recovered != report.trace.names() {
        analysis.checker.structural_errors.push(format!(
            "recovered rule sequence ({} firings) disagrees with the engine trace ({})",
            recovered.len(),
            report.trace.names().len()
        ));
    }

    // §3 replay of the engine's own trace.
    analysis.set_replay_result(
        validate_trace(&rules, &initial, &report.trace).map_err(|v| v.to_string()),
    );
    structural_errors.extend(analysis.checker.structural_errors.iter().cloned());
    let replay = match &analysis.checker.replay_result {
        None => "not-run",
        Some(Ok(())) => "consistent",
        Some(Err(_)) => "violation",
    };
    let verdict = if structural_errors.is_empty() && analysis.verdict() == Verdict::Consistent {
        Verdict::Consistent
    } else {
        Verdict::Inconsistent
    };

    ChaosRun {
        commits: report.commits,
        aborts: report.aborts.total(),
        injected_aborts: report.aborts.injected,
        reader_aborts: report.aborts.reader_aborts(),
        snapshot_stale: report.aborts.snapshot_stale,
        si: analysis.si.as_ref().map(|s| s.verdict()),
        secs,
        wasted_ms: report.wasted_work.as_secs_f64() * 1e3,
        faults: report.fault_stats.unwrap_or_default(),
        governor: report.governor,
        structural_errors,
        replay,
        verdict,
        drained: report.commits == spec.tasks,
        timeline: engine.telemetry().map(|t| t.doc()),
        spec,
    }
}

/// The governor configuration the chaos sweep runs with: aggressive
/// enough to engage under the injected storms, conservative enough to
/// stay silent on the quiet plan.
pub fn sweep_governor(seed: u64) -> GovernorConfig {
    GovernorConfig {
        backoff_base_us: 30,
        backoff_cap_us: 1_000,
        storm_window: 16,
        storm_threshold_pm: 450,
        escalate_after: 3,
        starvation_bound: 5,
        cooldown_commits: 8,
        seed,
    }
}

/// A/B measurement for XS.3: the doom-storm plan, governor off vs on.
#[derive(Clone, Debug)]
pub struct GovernorComparison {
    /// Governor-off run.
    pub off: ChaosRun,
    /// Governor-on run.
    pub on: ChaosRun,
}

impl GovernorComparison {
    /// JSON block for the report.
    pub fn to_json(&self) -> Json {
        let leg = |r: &ChaosRun| {
            Json::Obj(vec![
                ("secs".into(), Json::num(r.secs)),
                (
                    "throughput".into(),
                    Json::num(r.commits as f64 / r.secs.max(1e-9)),
                ),
                ("commits".into(), Json::u64(r.commits as u64)),
                ("aborts".into(), Json::u64(r.aborts)),
                ("wasted_ms".into(), Json::num(r.wasted_ms)),
            ])
        };
        Json::Obj(vec![
            ("plan".into(), Json::str(self.off.spec.plan)),
            ("workers".into(), Json::u64(self.off.spec.workers as u64)),
            ("off".into(), leg(&self.off)),
            ("on".into(), leg(&self.on)),
        ])
    }
}

/// Assembles the `dps-chaos-report-v1` document.
pub fn chaos_document(
    seed: u64,
    runs: &[ChaosRun],
    falsifiability: &ChaosRun,
    comparison: &GovernorComparison,
) -> Json {
    let all_pass = runs.iter().all(ChaosRun::passes);
    let rejected = falsifiability.verdict == Verdict::Inconsistent;
    Json::Obj(vec![
        ("schema".into(), Json::str("dps-chaos-report-v1")),
        ("seed".into(), Json::u64(seed)),
        (
            "runs".into(),
            Json::Arr(runs.iter().map(ChaosRun::to_json).collect()),
        ),
        (
            "falsifiability".into(),
            Json::Obj(vec![
                ("rejected".into(), Json::Bool(rejected)),
                (
                    "structural_errors".into(),
                    Json::u64(falsifiability.structural_errors.len() as u64),
                ),
                (
                    "verdict".into(),
                    Json::str(falsifiability.verdict.name()),
                ),
            ]),
        ),
        ("governor_comparison".into(), comparison.to_json()),
        // The governor-ON doom-storm leg's sampled series: the
        // annotated escalation/serialization timeline behind
        // EXPERIMENTS.md §XS.7.
        (
            "timeline".into(),
            comparison
                .on
                .timeline
                .as_ref()
                .map_or(Json::Null, TimelineDoc::to_json),
        ),
        (
            "verdict".into(),
            Json::str(if all_pass && rejected {
                "consistent"
            } else {
                "inconsistent"
            }),
        ),
    ])
}
