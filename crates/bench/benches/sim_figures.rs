//! Benchmarks regenerating the §5 figures (E5.1–E5.4) and the X1 sweeps.
//!
//! The assertions inside each iteration double as regression checks: a
//! simulator change that breaks a paper number fails the bench.

use dps_bench::harness::Criterion;
use dps_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use dps_core::abstract_model::{paper51_base, paper52_conflict};
use dps_sim::{compare, sweep};

fn figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_figures");
    g.bench_function("figure_5_1_base", |b| {
        let sys = paper51_base();
        b.iter(|| {
            let cmp = compare(black_box(&sys), 4);
            assert_eq!((cmp.t_single, cmp.t_multi), (9, 4));
            cmp
        })
    });
    g.bench_function("figure_5_2_conflict", |b| {
        let sys = paper52_conflict();
        b.iter(|| {
            let cmp = compare(black_box(&sys), 4);
            assert_eq!((cmp.t_single, cmp.t_multi), (5, 3));
            cmp
        })
    });
    g.bench_function("figure_5_3_exec_time", |b| {
        let sys = paper51_base().with_time(1, 4);
        b.iter(|| {
            let cmp = compare(black_box(&sys), 4);
            assert_eq!((cmp.t_single, cmp.t_multi), (10, 4));
            cmp
        })
    });
    g.bench_function("figure_5_4_three_procs", |b| {
        let sys = paper51_base();
        b.iter(|| {
            let cmp = compare(black_box(&sys), 3);
            assert_eq!((cmp.t_single, cmp.t_multi), (9, 6));
            cmp
        })
    });
    g.finish();
}

fn sweeps(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_sweeps");
    g.sample_size(10);
    g.bench_function("x1_conflict_sweep", |b| {
        b.iter(|| sweep::conflict_sweep(black_box(&[0.0, 0.1, 0.4]), 8, 10))
    });
    g.bench_function("x1_processor_sweep", |b| {
        b.iter(|| sweep::processor_sweep(black_box(&[1, 4, 16]), 0.05, 10))
    });
    g.finish();
}

criterion_group!(benches, figures, sweeps);
criterion_main!(benches);
