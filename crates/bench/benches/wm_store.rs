//! Working-memory substrate benches: tuple throughput, index selection,
//! atomic delta application, snapshot/redo-log persistence.

use dps_bench::harness::{BenchmarkId, Criterion};
use dps_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use dps_wm::{Atom, DeltaSet, RedoLog, Value, WmeData, WorkingMemory};

fn populated(n: i64) -> WorkingMemory {
    let mut wm = WorkingMemory::new();
    for i in 0..n {
        wm.insert(
            WmeData::new(if i % 2 == 0 { "even" } else { "odd" })
                .with("k", i % 10)
                .with("name", format!("tuple-{i}")),
        );
    }
    wm
}

fn store_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("wm_store");
    g.bench_function("insert_remove_1k", |b| {
        b.iter(|| {
            let mut wm = WorkingMemory::new();
            let ids: Vec<_> = (0..1000i64)
                .map(|i| wm.insert(WmeData::new("t").with("k", i)))
                .collect();
            for id in ids {
                wm.remove(id).unwrap();
            }
            wm.len()
        })
    });
    for &n in &[100i64, 10_000] {
        g.bench_with_input(BenchmarkId::new("select_eq", n), &n, |b, &n| {
            let wm = populated(n);
            let rel = wm.relation("even").unwrap();
            b.iter(|| rel.select_eq("k", black_box(&Value::Int(4))).count())
        });
    }
    g.bench_function("apply_modify_batch", |b| {
        let mut wm = populated(1000);
        let ids: Vec<_> = wm.iter().map(|w| w.id).take(64).collect();
        b.iter(|| {
            let mut d = DeltaSet::new();
            for &id in &ids {
                d.modify(id, [(Atom::from("k"), Value::Int(7))]);
            }
            let changes = wm.apply(&d).unwrap();
            changes.len()
        })
    });
    g.finish();
}

fn persistence(c: &mut Criterion) {
    let mut g = c.benchmark_group("wm_persistence");
    for &n in &[100i64, 10_000] {
        let wm = populated(n);
        let snap = wm.encode_snapshot().unwrap();
        g.bench_with_input(BenchmarkId::new("encode_snapshot", n), &n, |b, _| {
            b.iter(|| wm.encode_snapshot().unwrap().len())
        });
        g.bench_with_input(BenchmarkId::new("decode_snapshot", n), &n, |b, _| {
            b.iter(|| {
                WorkingMemory::decode_snapshot(black_box(&snap))
                    .unwrap()
                    .len()
            })
        });
    }
    g.bench_function("redo_log_append_replay_100", |b| {
        let base = populated(100);
        let snap = base.encode_snapshot().unwrap();
        b.iter(|| {
            let mut wm = WorkingMemory::decode_snapshot(&snap).unwrap();
            let mut log = RedoLog::new();
            for i in 0..100i64 {
                let mut d = DeltaSet::new();
                d.create(WmeData::new("log").with("i", i));
                log.append(&wm.apply(&d).unwrap()).unwrap();
            }
            let mut recovered = WorkingMemory::decode_snapshot(&snap).unwrap();
            log.replay(&mut recovered).unwrap();
            recovered.len()
        })
    });
    g.finish();
}

criterion_group!(benches, store_ops, persistence);
criterion_main!(benches);
