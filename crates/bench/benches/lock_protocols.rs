//! X2 — lock-protocol comparison: the paper's `Rc`/`Ra`/`Wa` scheme vs
//! conventional 2PL, at the lock-manager level (grant latency, conflict
//! scenarios) and at the engine level (whole-run wall clock).

use dps_bench::harness::{BenchmarkId, Criterion};
use dps_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use dps_bench::workloads;
use dps_core::{ParallelConfig, ParallelEngine, WorkModel};
use dps_lock::{ConflictPolicy, LockManager, LockMode, Protocol, ResourceId};

/// Raw manager throughput: begin, lock k resources, commit.
fn manager_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("lock_manager");
    for &k in &[1usize, 8, 64] {
        g.bench_with_input(BenchmarkId::new("grant_commit", k), &k, |b, &k| {
            let lm = LockManager::new(ConflictPolicy::AbortReaders);
            b.iter(|| {
                let t = lm.begin();
                for i in 0..k {
                    lm.lock(t, ResourceId::Tuple(i as u64), LockMode::Rc)
                        .unwrap();
                }
                lm.commit(black_box(t)).unwrap()
            })
        });
    }
    // The paper's key cell: Wa granted under an outstanding Rc.
    g.bench_function("rc_wa_overlap_cycle", |b| {
        let lm = LockManager::new(ConflictPolicy::AbortReaders);
        b.iter(|| {
            let reader = lm.begin();
            let writer = lm.begin();
            lm.lock(reader, ResourceId::Tuple(1), LockMode::Rc).unwrap();
            lm.lock(writer, ResourceId::Tuple(1), LockMode::Wa).unwrap();
            let out = lm.commit(writer).unwrap();
            assert_eq!(out.doomed_readers.len(), 1);
            lm.commit(reader).unwrap_err()
        })
    });
    g.finish();
}

/// Whole-engine wall clock under contention: the paper's claim is that
/// the improved scheme wins when RHSs are long (condition evaluation can
/// overlap an in-flight writer).
fn engine_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_protocols");
    g.sample_size(10);
    for (label, protocol) in [
        ("two_phase", Protocol::TwoPhase),
        ("rc_ra_wa", Protocol::RcRaWa),
    ] {
        for &tallies in &[8usize, 1] {
            g.bench_with_input(
                BenchmarkId::new(label, format!("tallies_{tallies}")),
                &tallies,
                |b, &tallies| {
                    b.iter(|| {
                        let (rules, wm) = workloads::shared_resources(12, tallies);
                        let mut e = ParallelEngine::new(
                            &rules,
                            wm,
                            ParallelConfig {
                                protocol,
                                policy: ConflictPolicy::AbortReaders,
                                workers: 4,
                                work: WorkModel::FixedMicros(200),
                                max_commits: 1_000,
                                rc_escalation: None,
                                lock_shards: dps_lock::DEFAULT_SHARDS,
                                ..Default::default()
                            },
                        );
                        let r = e.run();
                        assert_eq!(r.commits, 12);
                        r.commits
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, manager_throughput, engine_protocols);
criterion_main!(benches);
