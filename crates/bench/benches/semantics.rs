//! E3.2 / X6 machinery costs: execution-graph construction, `ES_single`
//! enumeration, membership checking, and concrete trace validation.

use dps_bench::harness::{BenchmarkId, Criterion};
use dps_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use dps_bench::workloads;
use dps_core::abstract_model::paper33_example;
use dps_core::semantics::{validate_trace, ExecutionGraph};
use dps_core::{EngineConfig, SingleThreadEngine};
use dps_sim::generator::{generate, GeneratorConfig};

fn graph(c: &mut Criterion) {
    let mut g = c.benchmark_group("semantics_graph");
    g.bench_function("paper33_build", |b| {
        let sys = paper33_example();
        b.iter(|| ExecutionGraph::build(black_box(&sys), 10_000))
    });
    g.bench_function("paper33_enumerate", |b| {
        let sys = paper33_example();
        let graph = ExecutionGraph::build(&sys, 10_000);
        b.iter(|| {
            let seqs = graph.maximal_sequences(1000, 100);
            assert_eq!(seqs.len(), 9);
            seqs
        })
    });
    for &n in &[8usize, 12] {
        g.bench_with_input(BenchmarkId::new("random_build", n), &n, |b, &n| {
            let sys = generate(&GeneratorConfig {
                productions: n,
                conflict_density: 0.2,
                ..Default::default()
            });
            b.iter(|| ExecutionGraph::build(black_box(&sys), 200_000))
        });
    }
    g.finish();
}

/// Cost of the static-analysis primitives the elision planner leans on:
/// the linear merge walk in [`AccessSet::overlaps`] (both the disjoint
/// miss and the late hit) and the full pairwise [`commutes`] judgment
/// over a generated rule population.
fn access_overlap(c: &mut Criterion) {
    use dps_rules::analysis::{commutes, rule_access, AccessSet, Granularity};

    let mut g = c.benchmark_group("access_overlap");
    for &n in &[8usize, 64] {
        let mut a = AccessSet::new();
        let mut b = AccessSet::new();
        let mut hit = AccessSet::new();
        for i in 0..n {
            a.add(format!("class{i}").into(), "n".into());
            b.add(format!("other{i}").into(), "n".into());
            hit.add(format!("class{i}").into(), "m".into());
        }
        hit.add(format!("class{}", n - 1).into(), "n".into());
        g.bench_with_input(BenchmarkId::new("disjoint", n), &n, |bch, _| {
            bch.iter(|| black_box(&a).overlaps(black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("late_hit", n), &n, |bch, _| {
            bch.iter(|| black_box(&a).overlaps(black_box(&hit)))
        });
    }
    // Pairwise commutativity over a realistic rule population: this is
    // the whole planner-side cost of electing components for elision.
    let (rules, _) = workloads::commute_stream(8, 4, 8, 4);
    let accesses: Vec<_> = rules.rules().iter().map(rule_access).collect();
    g.bench_function("commutes_pairwise", |bch| {
        bch.iter(|| {
            let mut ok = 0usize;
            for x in &accesses {
                for y in &accesses {
                    if commutes(black_box(x), black_box(y), Granularity::ClassAttribute) {
                        ok += 1;
                    }
                }
            }
            ok
        })
    });
    g.finish();
}

fn trace_validation(c: &mut Criterion) {
    let mut g = c.benchmark_group("semantics_validate");
    for &(jobs, stages) in &[(8usize, 4usize), (16, 8)] {
        let (rules, wm) = workloads::manufacturing(jobs, stages);
        let initial = wm.clone();
        let mut e = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
        let report = e.run();
        g.bench_with_input(
            BenchmarkId::new("replay", format!("{jobs}x{stages}")),
            &report.trace,
            |b, trace| b.iter(|| validate_trace(&rules, &initial, black_box(trace)).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, graph, access_overlap, trace_validation);
criterion_main!(benches);
