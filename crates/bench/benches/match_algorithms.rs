//! X4 — match-substrate ablation: Rete vs TREAT (the two algorithms the
//! paper's §2 survey contrasts), on build cost and incremental updates.

use dps_bench::harness::{BenchmarkId, Criterion};
use dps_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use dps_bench::workloads;
use dps_match::{Matcher, PartitionedRete, Rete, Treat};
use dps_wm::{Change, WmeData, WorkingMemory};

fn build(c: &mut Criterion) {
    let mut g = c.benchmark_group("match_build");
    for &jobs in &[10usize, 100] {
        let (rules, wm) = workloads::manufacturing(jobs, 8);
        g.bench_with_input(BenchmarkId::new("rete", jobs), &jobs, |b, _| {
            b.iter(|| Rete::new(black_box(&rules), black_box(&wm)))
        });
        g.bench_with_input(BenchmarkId::new("treat", jobs), &jobs, |b, _| {
            b.iter(|| Treat::new(black_box(&rules), black_box(&wm)))
        });
    }
    g.finish();
}

/// One add + one remove churned through an already-loaded matcher: the
/// incremental cost the two algorithms trade off differently.
fn churn<M: Matcher>(matcher: &mut M, wm: &mut WorkingMemory) {
    let w = wm.insert_full(WmeData::new("job").with("stage", 0i64));
    matcher.apply(&[Change::Added(w.clone())]);
    let removed = wm.remove(w.id).expect("just inserted");
    matcher.apply(&[Change::Removed(removed)]);
}

fn incremental(c: &mut Criterion) {
    let mut g = c.benchmark_group("match_incremental");
    for &jobs in &[10usize, 100] {
        let (rules, wm) = workloads::manufacturing(jobs, 8);
        g.bench_with_input(BenchmarkId::new("rete_churn", jobs), &jobs, |b, _| {
            let mut rete = Rete::new(&rules, &wm);
            let mut wm = wm.clone();
            b.iter(|| churn(&mut rete, &mut wm))
        });
        g.bench_with_input(BenchmarkId::new("treat_churn", jobs), &jobs, |b, _| {
            let mut treat = Treat::new(&rules, &wm);
            let mut wm = wm.clone();
            b.iter(|| churn(&mut treat, &mut wm))
        });
    }
    g.finish();
}

/// Negation-heavy churn: the case where TREAT must re-join from scratch
/// while Rete updates counters.
fn negation_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("match_negation");
    let (rules, mut wm) = workloads::false_conflicts(50, 0);
    // A standing population of non-matching alarms to join against.
    for z in 0..50i64 {
        wm.insert(WmeData::new("alarm").with("zone", 1000 + z));
    }
    g.bench_function("rete_alarm_churn", |b| {
        let mut rete = Rete::new(&rules, &wm);
        let mut wm = wm.clone();
        b.iter(|| {
            let w = wm.insert_full(WmeData::new("alarm").with("zone", 5000i64));
            rete.apply(&[Change::Added(w.clone())]);
            let removed = wm.remove(w.id).unwrap();
            rete.apply(&[Change::Removed(removed)]);
        })
    });
    g.bench_function("treat_alarm_churn", |b| {
        let mut treat = Treat::new(&rules, &wm);
        let mut wm = wm.clone();
        b.iter(|| {
            let w = wm.insert_full(WmeData::new("alarm").with("zone", 5000i64));
            treat.apply(&[Change::Added(w.clone())]);
            let removed = wm.remove(w.id).unwrap();
            treat.apply(&[Change::Removed(removed)]);
        })
    });
    g.finish();
}

/// X8 — intra-phase parallelism: monolithic Rete vs partitioned (serial
/// routing) vs partitioned with threaded fan-out, on a rule set with
/// many independent class families.
fn partitioned(c: &mut Criterion) {
    use dps_rules::RuleSet;

    // 16 independent rule families, each over its own pair of classes.
    let mut src = String::new();
    for f in 0..16 {
        src.push_str(&format!(
            "(p fam{f} (a{f} ^k <x>) (b{f} ^k <x>) --> (remove 1))\n"
        ));
    }
    let rules = RuleSet::parse(&src).unwrap();
    let mut wm = WorkingMemory::new();
    for f in 0..16 {
        for k in 0..20i64 {
            wm.insert(WmeData::new(format!("a{f}")).with("k", k));
            wm.insert(WmeData::new(format!("b{f}")).with("k", k));
        }
    }
    // A batch touching every family at once.
    let mut scratch = wm.clone();
    let batch: Vec<Change> = (0..16)
        .map(|f| Change::Added(scratch.insert_full(WmeData::new(format!("a{f}")).with("k", 5i64))))
        .collect();

    let mut g = c.benchmark_group("match_partitioned");
    g.bench_function("monolithic", |b| {
        let mut rete = Rete::new(&rules, &wm);
        b.iter(|| rete.apply(&batch))
    });
    g.bench_function("partitioned_serial", |b| {
        let mut pm = PartitionedRete::new(&rules, &wm);
        b.iter(|| pm.apply(&batch))
    });
    g.bench_function("partitioned_threads", |b| {
        let mut pm = PartitionedRete::new(&rules, &wm);
        pm.set_parallel(true);
        b.iter(|| pm.apply(&batch))
    });
    g.finish();
}

/// The drain-pattern micro-bench `conflict.rs` points at (`conflict_drain`):
/// removing every instantiation that mentions one hot WME, or every
/// instantiation of one rule, under large fan-outs. An `InstKey` owns a
/// `Vec<(WmeId, Timestamp)>`, so the pre-drain implementation — cloning
/// each key out of the `by_wme` / `by_rule` index into a temporary
/// `Vec` — paid O(conditions) heap allocations *per key* before a single
/// removal happened; the drain pattern moves the whole index set out in
/// one `HashMap::remove`. The per-iteration `clone` of the pre-built set
/// is identical noise for both operations, so relative movement between
/// this bench's rows tracks the drain path itself.
fn conflict_drain(c: &mut Criterion) {
    use dps_match::{ConflictSet, Instantiation};
    use dps_rules::{Bindings, RuleId};
    use dps_wm::{Wme, WmeId};

    let wme = |id: u64| Wme {
        id: WmeId(id),
        data: WmeData::new("c"),
        timestamp: id,
    };
    // `fanout` instantiations all mentioning the hot WmeId(0) (and all
    // belonging to RuleId(0)), plus an equal population of bystanders
    // that must survive the drain untouched.
    let build = |fanout: usize| -> ConflictSet {
        let mut cs = ConflictSet::new();
        for i in 0..fanout as u64 {
            cs.insert(Instantiation {
                rule: RuleId(0),
                wmes: vec![wme(0), wme(1_000 + 2 * i), wme(1_001 + 2 * i)],
                bindings: Bindings::new(),
                salience: 0,
            });
            cs.insert(Instantiation {
                rule: RuleId(1 + (i % 8) as u32),
                wmes: vec![wme(10_000 + 2 * i), wme(10_001 + 2 * i)],
                bindings: Bindings::new(),
                salience: 0,
            });
        }
        cs
    };

    let mut g = c.benchmark_group("conflict_drain");
    for &fanout in &[64usize, 512] {
        let base = build(fanout);
        g.bench_with_input(
            BenchmarkId::new("remove_mentioning", fanout),
            &fanout,
            |b, &fanout| {
                b.iter(|| {
                    let mut cs = base.clone();
                    assert_eq!(cs.remove_mentioning(black_box(WmeId(0))), fanout);
                    black_box(cs.len())
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("remove_of_rule", fanout),
            &fanout,
            |b, &fanout| {
                b.iter(|| {
                    let mut cs = base.clone();
                    assert_eq!(cs.remove_of_rule(black_box(RuleId(0))).len(), fanout);
                    black_box(cs.len())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    build,
    incremental,
    negation_churn,
    partitioned,
    conflict_drain
);
criterion_main!(benches);
