//! X5 — engine comparison: single-thread vs static-parallel (Theorem 1)
//! vs dynamic-parallel (Theorem 2 / §4.3) on the synthetic workloads.

use dps_bench::harness::{BenchmarkId, Criterion};
use dps_bench::{criterion_group, criterion_main};

use dps_bench::workloads;
use dps_core::{
    EngineConfig, ParallelConfig, ParallelEngine, SingleThreadEngine, StaticConfig,
    StaticParallelEngine,
};

fn single_thread(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_single");
    for &(jobs, stages) in &[(8usize, 4usize), (32, 8)] {
        g.bench_with_input(
            BenchmarkId::new("manufacturing", format!("{jobs}x{stages}")),
            &(jobs, stages),
            |b, &(jobs, stages)| {
                b.iter(|| {
                    let (rules, wm) = workloads::manufacturing(jobs, stages);
                    let mut e = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
                    let r = e.run();
                    assert_eq!(r.commits, jobs * stages);
                    r.commits
                })
            },
        );
    }
    g.bench_function("hot_accumulator_64", |b| {
        b.iter(|| {
            let (rules, wm) = workloads::hot_accumulator(64);
            let mut e = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
            e.run().commits
        })
    });
    g.finish();
}

fn static_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_static");
    g.bench_function("manufacturing_16x6", |b| {
        b.iter(|| {
            let (rules, wm) = workloads::manufacturing(16, 6);
            let mut e = StaticParallelEngine::new(&rules, wm, StaticConfig::default());
            let r = e.run();
            assert_eq!(r.commits, 96);
            r.cycles
        })
    });
    g.finish();
}

fn dynamic_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_dynamic");
    g.sample_size(10);
    for &workers in &[1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("counters_16x4", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let (rules, wm) = workloads::counters(16, 4);
                    let mut e = ParallelEngine::new(
                        &rules,
                        wm,
                        ParallelConfig {
                            workers,
                            ..Default::default()
                        },
                    );
                    let r = e.run();
                    assert_eq!(r.commits, 64);
                    r.commits
                })
            },
        );
    }
    g.finish();
}

fn full_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_order_fulfillment");
    g.sample_size(20);
    g.bench_function("single_16_8", |b| {
        b.iter(|| {
            let (rules, wm) = workloads::order_fulfillment(16, 8);
            let mut e = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
            let r = e.run();
            assert_eq!(r.commits, 16 * 4 + 8 * 2);
            r.commits
        })
    });
    g.bench_function("dynamic_16_8_4workers", |b| {
        b.iter(|| {
            let (rules, wm) = workloads::order_fulfillment(16, 8);
            let mut e = ParallelEngine::new(
                &rules,
                wm,
                ParallelConfig {
                    workers: 4,
                    ..Default::default()
                },
            );
            let r = e.run();
            assert_eq!(r.commits, 16 * 4 + 8 * 2);
            r.commits
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    single_thread,
    static_parallel,
    dynamic_parallel,
    full_pipeline
);
criterion_main!(benches);
