//! Cross-engine integration: the three engines (single-thread, static
//! parallel, dynamic parallel) must agree on confluent workloads, and
//! every parallel trace must replay single-threadedly.

use std::collections::BTreeMap;

use dbps::engine::semantics::validate_trace;
use dbps::engine::{
    EngineConfig, ParallelConfig, ParallelEngine, SingleThreadEngine, StaticConfig,
    StaticParallelEngine,
};
use dbps::lock::{ConflictPolicy, Protocol};
use dbps::rules::RuleSet;
use dbps::wm::{Value, WmeData, WorkingMemory};

/// A confluent workload: whatever the firing order, the final state is
/// unique. Tasks move through 3 states; a tally counts completions.
fn workload(n: i64) -> (RuleSet, WorkingMemory) {
    let rules = RuleSet::parse(
        "(p start (job ^state new) --> (modify 1 ^state running))
         (p finish (job ^state running) (done ^count <c>)
            --> (modify 1 ^state finished) (modify 2 ^count (+ <c> 1)))",
    )
    .unwrap();
    let mut wm = WorkingMemory::new();
    for _ in 0..n {
        wm.insert(WmeData::new("job").with("state", "new"));
    }
    wm.insert(WmeData::new("done").with("count", 0i64));
    (rules, wm)
}

/// Class → multiset of (attr, value) rows, ignoring ids and timestamps:
/// the order-independent fingerprint of a working memory.
fn fingerprint(wm: &WorkingMemory) -> BTreeMap<String, Vec<String>> {
    let mut out: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for w in wm.iter() {
        let row: Vec<String> = w
            .data
            .attrs
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        out.entry(w.class().to_string())
            .or_default()
            .push(row.join(","));
    }
    for rows in out.values_mut() {
        rows.sort();
    }
    out
}

#[test]
fn three_engines_agree_on_the_confluent_workload() {
    let n = 8i64;
    let (rules, wm) = workload(n);

    let mut single = SingleThreadEngine::new(&rules, wm.clone(), EngineConfig::default());
    let rs = single.run();

    let mut static_par = StaticParallelEngine::new(&rules, wm.clone(), StaticConfig::default());
    let rt = static_par.run();

    let mut dynamic = ParallelEngine::new(&rules, wm.clone(), ParallelConfig::default());
    let rd = dynamic.run();

    assert_eq!(rs.commits, 2 * n as usize);
    assert_eq!(rt.commits, rs.commits);
    assert_eq!(rd.commits, rs.commits);

    validate_trace(&rules, &wm, &rs.trace).unwrap();
    validate_trace(&rules, &wm, &rt.trace).unwrap();
    validate_trace(&rules, &wm, &rd.trace).unwrap();

    let fp_single = fingerprint(single.wm());
    assert_eq!(fp_single, fingerprint(static_par.wm()));
    assert_eq!(fp_single, fingerprint(&dynamic.final_wm()));
    assert_eq!(
        fp_single["done"],
        vec![format!("count={n}")],
        "the tally counted every job exactly once"
    );
}

#[test]
fn dynamic_engine_agrees_across_protocols_and_policies() {
    let (rules, wm) = workload(6);
    let mut fingerprints = Vec::new();
    for protocol in [Protocol::TwoPhase, Protocol::RcRaWa] {
        for policy in [ConflictPolicy::AbortReaders, ConflictPolicy::Revalidate] {
            for workers in [1usize, 3] {
                let mut e = ParallelEngine::new(
                    &rules,
                    wm.clone(),
                    ParallelConfig {
                        protocol,
                        policy,
                        workers,
                        ..Default::default()
                    },
                );
                let r = e.run();
                validate_trace(&rules, &wm, &r.trace).unwrap();
                assert_eq!(r.commits, 12);
                fingerprints.push(fingerprint(&e.final_wm()));
            }
        }
    }
    assert!(
        fingerprints.windows(2).all(|w| w[0] == w[1]),
        "every protocol/policy/worker combination converges to one state"
    );
}

#[test]
fn static_engine_parallelism_does_not_change_results() {
    let (rules, wm) = workload(10);
    let run_width = |w: usize| {
        let mut e = StaticParallelEngine::new(
            &rules,
            wm.clone(),
            StaticConfig {
                max_width: w,
                ..Default::default()
            },
        );
        let r = e.run();
        validate_trace(&rules, &wm, &r.trace).unwrap();
        (r.commits, fingerprint(e.wm()))
    };
    let (c1, f1) = run_width(1);
    let (c4, f4) = run_width(4);
    let (cmax, fmax) = run_width(usize::MAX);
    assert_eq!(c1, 20);
    assert_eq!((c1, &f1), (c4, &f4));
    assert_eq!((c1, &f1), (cmax, &fmax));
}

#[test]
fn engines_handle_negation_consistently() {
    // One-shot latch: fire once, the made tuple blocks refiring.
    let rules = RuleSet::parse("(p once (go) -(fired) --> (make fired))").unwrap();
    let mut wm = WorkingMemory::new();
    wm.insert(WmeData::new("go"));

    let mut single = SingleThreadEngine::new(&rules, wm.clone(), EngineConfig::default());
    assert_eq!(single.run().commits, 1);

    let mut static_par = StaticParallelEngine::new(&rules, wm.clone(), StaticConfig::default());
    assert_eq!(static_par.run().commits, 1);

    let mut dynamic = ParallelEngine::new(&rules, wm.clone(), ParallelConfig::default());
    let rd = dynamic.run();
    assert_eq!(rd.commits, 1);
    assert_eq!(dynamic.final_wm().class_iter("fired").count(), 1);
}

/// The richest workload (order fulfillment: joins, salience, negation,
/// disjunctions, arithmetic) must converge identically on every engine,
/// protocol and policy.
#[test]
fn order_fulfillment_converges_on_every_engine() {
    let (rules, wm) = dps_bench::workloads::order_fulfillment(6, 3);
    let expected_commits = 4 * 6 + 2 * 3;
    let check = |wm_final: &WorkingMemory| {
        let count_state = |s: &str| {
            wm_final
                .class_iter("order")
                .filter(|w| w.get("state").and_then(|v| v.as_text()) == Some(s))
                .count()
        };
        assert_eq!(count_state("shipped"), 6);
        assert_eq!(count_state("backordered"), 3);
        assert_eq!(wm_final.class_iter("audit").count(), 3);
        assert_eq!(wm_final.class_iter("package").count(), 6);
    };

    let mut single = SingleThreadEngine::new(&rules, wm.clone(), EngineConfig::default());
    let rs = single.run();
    assert_eq!(rs.commits, expected_commits);
    validate_trace(&rules, &wm, &rs.trace).unwrap();
    check(single.wm());

    let mut static_par = StaticParallelEngine::new(&rules, wm.clone(), StaticConfig::default());
    let rt = static_par.run();
    assert_eq!(rt.commits, expected_commits);
    validate_trace(&rules, &wm, &rt.trace).unwrap();
    check(static_par.wm());

    for protocol in [Protocol::TwoPhase, Protocol::RcRaWa] {
        for policy in [ConflictPolicy::AbortReaders, ConflictPolicy::Revalidate] {
            let mut dynamic = ParallelEngine::new(
                &rules,
                wm.clone(),
                ParallelConfig {
                    protocol,
                    policy,
                    workers: 4,
                    ..Default::default()
                },
            );
            let rd = dynamic.run();
            assert_eq!(rd.commits, expected_commits, "{protocol:?}/{policy:?}");
            validate_trace(&rules, &wm, &rd.trace).unwrap();
            check(&dynamic.final_wm());
        }
    }
}

#[test]
fn partitioned_matcher_plugs_into_the_engine() {
    use dbps::rete::PartitionedRete;
    let (rules, wm) = dps_bench::workloads::order_fulfillment(4, 2);
    let matcher = PartitionedRete::new(&rules, &wm);
    let mut engine = SingleThreadEngine::with_matcher(
        &rules,
        wm.clone(),
        matcher,
        EngineConfig::default(),
    );
    let report = engine.run();
    assert_eq!(report.commits, 4 * 4 + 2 * 2);
    validate_trace(&rules, &wm, &report.trace).unwrap();
}

#[test]
fn removal_cascade_terminates_everywhere() {
    // Consumers race to remove shared food; each firing consumes one.
    let rules = RuleSet::parse(
        "(p eat (eater ^hungry true) (food) --> (remove 2) (modify 1 ^hungry false))",
    )
    .unwrap();
    let mut wm = WorkingMemory::new();
    for _ in 0..5 {
        wm.insert(WmeData::new("eater").with("hungry", true));
    }
    for _ in 0..3 {
        wm.insert(WmeData::new("food"));
    }
    // Only 3 eaters can eat (3 food items).
    for run in 0..3 {
        let (commits, fed) = match run {
            0 => {
                let mut e = SingleThreadEngine::new(&rules, wm.clone(), EngineConfig::default());
                let r = e.run();
                (
                    r.commits,
                    e.wm()
                        .class_iter("eater")
                        .filter(|w| w.get("hungry") == Some(&Value::Bool(false)))
                        .count(),
                )
            }
            1 => {
                let mut e = StaticParallelEngine::new(&rules, wm.clone(), StaticConfig::default());
                let r = e.run();
                (
                    r.commits,
                    e.wm()
                        .class_iter("eater")
                        .filter(|w| w.get("hungry") == Some(&Value::Bool(false)))
                        .count(),
                )
            }
            _ => {
                let mut e = ParallelEngine::new(&rules, wm.clone(), ParallelConfig::default());
                let r = e.run();
                validate_trace(&rules, &wm, &r.trace).unwrap();
                let wm2 = e.final_wm();
                (
                    r.commits,
                    wm2.class_iter("eater")
                        .filter(|w| w.get("hungry") == Some(&Value::Bool(false)))
                        .count(),
                )
            }
        };
        assert_eq!(commits, 3, "run {run}");
        assert_eq!(fed, 3, "run {run}");
    }
}
