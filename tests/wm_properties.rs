//! Property tests on the working-memory substrate: index invariants
//! under random operation streams, apply/undo inversion, and timestamp
//! monotonicity.
//!
//! Randomness comes from the workspace's internal deterministic PRNG
//! (`dps_wm::rng::SmallRng`); each property is checked over a fixed
//! sweep of seeds so failures reproduce exactly by seed.

use dbps::wm::rng::SmallRng;
use dbps::wm::{Atom, DeltaSet, Value, Wme, WmeData, WmeId, WorkingMemory};

const CASES: u64 = 128;

#[derive(Clone, Debug)]
enum Op {
    Insert { class: u8, k: i64 },
    Remove { pick: usize },
    Modify { pick: usize, k: i64 },
}

fn random_ops(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| match rng.index(3) {
            0 => Op::Insert {
                class: rng.index(3) as u8,
                k: rng.range_i64(-3, 3),
            },
            1 => Op::Remove { pick: rng.index(8) },
            _ => Op::Modify {
                pick: rng.index(8),
                k: rng.range_i64(-3, 3),
            },
        })
        .collect()
}

fn apply_ops(wm: &mut WorkingMemory, ops: &[Op]) {
    let mut live: Vec<WmeId> = Vec::new();
    for op in ops {
        match op {
            Op::Insert { class, k } => {
                let id = wm.insert(WmeData::new(format!("c{class}")).with("k", *k));
                live.push(id);
            }
            Op::Remove { pick } => {
                if live.is_empty() {
                    continue;
                }
                let id = live.swap_remove(pick % live.len());
                wm.remove(id).unwrap();
            }
            Op::Modify { pick, k } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[pick % live.len()];
                let mut d = DeltaSet::new();
                d.modify(id, [(Atom::from("k"), Value::Int(*k))]);
                wm.apply(&d).unwrap();
            }
        }
    }
}

/// Secondary indexes never drift from the base tuples.
#[test]
fn index_invariants_hold_under_random_ops() {
    for seed in 0..CASES {
        let mut wm = WorkingMemory::new();
        apply_ops(&mut wm, &random_ops(seed, 40));
        for class in ["c0", "c1", "c2"] {
            if let Some(rel) = wm.relation(class) {
                assert!(
                    rel.check_index_invariants(),
                    "seed {seed}: class {class} index drifted"
                );
                // Equality selection agrees with a full scan.
                for k in -3..3i64 {
                    let by_index = rel.select_eq("k", &Value::Int(k)).count();
                    let by_scan = rel
                        .iter()
                        .filter(|w| w.get("k") == Some(&Value::Int(k)))
                        .count();
                    assert_eq!(by_index, by_scan, "seed {seed}");
                }
            }
        }
    }
}

/// `undo(apply(δ))` restores the exact previous state.
#[test]
fn apply_then_undo_is_identity() {
    for seed in 0..CASES {
        let mut wm = WorkingMemory::new();
        apply_ops(&mut wm, &random_ops(seed, 20));
        let snapshot: Vec<Wme> = wm.iter().cloned().collect();

        // A composite delta touching existing and new tuples.
        let victims: Vec<WmeId> = wm.iter().map(|w| w.id).take(3).collect();
        let mut delta = DeltaSet::new();
        delta.create(WmeData::new("fresh").with("k", 42i64));
        for (i, id) in victims.iter().enumerate() {
            if i % 2 == 0 {
                delta.remove(*id);
            } else {
                delta.modify(*id, [(Atom::from("k"), Value::Int(99))]);
            }
        }
        let changes = wm.apply(&delta).unwrap();
        wm.undo(&changes).unwrap();
        let after: Vec<Wme> = wm.iter().cloned().collect();
        assert_eq!(snapshot, after, "seed {seed}");
    }
}

/// Timestamps increase strictly with every (re-)insertion.
#[test]
fn timestamps_strictly_increase() {
    for seed in 0..CASES {
        let mut wm = WorkingMemory::new();
        let ops = random_ops(seed, 30);
        let mut last = 0;
        let mut live: Vec<WmeId> = Vec::new();
        for op in &ops {
            match op {
                Op::Insert { class, k } => {
                    let w = wm.insert_full(WmeData::new(format!("c{class}")).with("k", *k));
                    assert!(w.timestamp > last, "seed {seed}");
                    last = w.timestamp;
                    live.push(w.id);
                }
                Op::Remove { pick } if !live.is_empty() => {
                    let id = live.swap_remove(pick % live.len());
                    wm.remove(id).unwrap();
                }
                Op::Modify { pick, k } if !live.is_empty() => {
                    let id = live[pick % live.len()];
                    let mut d = DeltaSet::new();
                    d.modify(id, [(Atom::from("k"), Value::Int(*k))]);
                    wm.apply(&d).unwrap();
                    let fresh = wm.get(id).unwrap().timestamp;
                    assert!(fresh > last, "seed {seed}");
                    last = fresh;
                }
                _ => {}
            }
        }
    }
}

/// Snapshots roundtrip exactly for arbitrary operation histories,
/// and a redo log of further commits recovers the final state.
#[test]
fn persistence_roundtrip_under_random_ops() {
    for seed in 0..CASES {
        let mut wm = WorkingMemory::new();
        apply_ops(&mut wm, &random_ops(seed, 25));
        let snap = wm.encode_snapshot().unwrap();
        let restored = WorkingMemory::decode_snapshot(&snap).unwrap();
        let a: Vec<Wme> = wm.iter().cloned().collect();
        let b: Vec<Wme> = restored.iter().cloned().collect();
        assert_eq!(a, b, "seed {seed}");
        assert_eq!(wm.clock(), restored.clock(), "seed {seed}");

        // Ship further commits through a redo log.
        let mut log = dbps::wm::RedoLog::new();
        let more = random_ops(seed.wrapping_add(1), 10);
        let mut shadow = restored;
        {
            // Record as change batches via a mirror of the same ops.
            let mut live: Vec<WmeId> = shadow.iter().map(|w| w.id).collect();
            for op in &more {
                match op {
                    Op::Insert { class, k } => {
                        let mut d = DeltaSet::new();
                        d.create(WmeData::new(format!("c{class}")).with("k", *k));
                        let ch = shadow.apply(&d).unwrap();
                        live.extend(ch.iter().map(|c| c.wme().id));
                        log.append(&ch).unwrap();
                    }
                    Op::Remove { pick } if !live.is_empty() => {
                        let id = live.swap_remove(pick % live.len());
                        if shadow.contains(id) {
                            let mut d = DeltaSet::new();
                            d.remove(id);
                            log.append(&shadow.apply(&d).unwrap()).unwrap();
                        }
                    }
                    Op::Modify { pick, k } if !live.is_empty() => {
                        let id = live[pick % live.len()];
                        if shadow.contains(id) {
                            let mut d = DeltaSet::new();
                            d.modify(id, [(Atom::from("k"), Value::Int(*k))]);
                            log.append(&shadow.apply(&d).unwrap()).unwrap();
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut recovered = WorkingMemory::decode_snapshot(&snap).unwrap();
        dbps::wm::RedoLog::from_bytes(log.as_bytes())
            .unwrap()
            .replay(&mut recovered)
            .unwrap();
        let x: Vec<Wme> = shadow.iter().cloned().collect();
        let y: Vec<Wme> = recovered.iter().cloned().collect();
        assert_eq!(x, y, "seed {seed}");
    }
}

/// Catalogue cardinalities equal live relation sizes.
#[test]
fn catalog_cardinalities_track_relations() {
    for seed in 0..CASES {
        let mut wm = WorkingMemory::new();
        apply_ops(&mut wm, &random_ops(seed, 40));
        for class in ["c0", "c1", "c2"] {
            let live = wm.relation(class).map_or(0, |r| r.len());
            let card = wm.catalog().stats(class).map_or(0, |s| s.cardinality);
            assert_eq!(live, card, "seed {seed} class {class}");
        }
    }
}
