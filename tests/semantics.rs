//! Integration tests for §3: the execution graph, `ES_single`, and the
//! semantic-consistency condition across crates (E3.2, X6).

use dbps::engine::abstract_model::{fmt_seq, paper33_example, paper51_base, PId};
use dbps::engine::semantics::{validate_abstract_sequence, validate_trace, ExecutionGraph};
use dbps::engine::{EngineConfig, SingleThreadEngine};
use dbps::rete::Strategy;
use dbps::rules::RuleSet;
use dbps::sim::simulate_multi;
use dbps::wm::{WmeData, WorkingMemory};

#[test]
fn e3_2_execution_semantics_of_the_paper_example() {
    let sys = paper33_example();
    let g = ExecutionGraph::build(&sys, 10_000);
    let seqs: Vec<String> = g
        .maximal_sequences(100, 100)
        .iter()
        .map(|s| fmt_seq(s))
        .collect();
    assert_eq!(seqs.len(), 9, "§3.3 lists nine sequences");
    assert_eq!(seqs[0], "p1 p4 p5", "the paper's first sequence");
    // Every maximal sequence and every prefix is admitted.
    for s in g.maximal_sequences(100, 100) {
        for k in 0..=s.len() {
            assert!(g.admits(&s[..k]));
        }
        validate_abstract_sequence(&sys, &s).unwrap();
    }
}

#[test]
fn multi_thread_schedules_stay_inside_es_single() {
    // Definition 3.2 for the §5 simulator across processor counts.
    for sys in [paper51_base(), paper33_example()] {
        let g = ExecutionGraph::build(&sys, 100_000);
        assert!(!g.truncated());
        for np in 1..=5 {
            let m = simulate_multi(&sys, np);
            assert!(
                g.admits(&m.commit_seq),
                "Np={np}: sequence '{}' escaped ES_single",
                fmt_seq(&m.commit_seq)
            );
        }
    }
}

#[test]
fn every_strategy_yields_a_valid_single_thread_trace() {
    let rules = RuleSet::parse(
        "(p take (coin ^v <v>) (purse ^sum <s>)
           --> (remove 1) (modify 2 ^sum (+ <s> <v>)))",
    )
    .unwrap();
    let mut wm = WorkingMemory::new();
    for v in [1i64, 5, 10, 25] {
        wm.insert(WmeData::new("coin").with("v", v));
    }
    wm.insert(WmeData::new("purse").with("sum", 0i64));
    for strategy in [
        Strategy::Fifo,
        Strategy::Lex,
        Strategy::Mea,
        Strategy::Salience,
        Strategy::Random(7),
        Strategy::Random(99),
    ] {
        let initial = wm.clone();
        let mut e = SingleThreadEngine::new(
            &rules,
            wm.clone(),
            EngineConfig {
                strategy,
                max_cycles: 100,
            },
        );
        let r = e.run();
        assert_eq!(r.commits, 4);
        validate_trace(&rules, &initial, &r.trace).unwrap();
        // Confluence: whatever the order, the purse ends at 41.
        let purse = e.wm().class_iter("purse").next().unwrap();
        assert_eq!(purse.get("sum").and_then(|v| v.as_i64()), Some(41));
    }
}

#[test]
fn corrupted_traces_are_rejected() {
    let rules =
        RuleSet::parse("(p bump (cell ^n { > 0 <n> }) --> (modify 1 ^n (- <n> 1)))").unwrap();
    let mut wm = WorkingMemory::new();
    wm.insert(WmeData::new("cell").with("n", 2i64));
    let initial = wm.clone();
    let mut e = SingleThreadEngine::new(&rules, wm, EngineConfig::default());
    let r = e.run();
    assert_eq!(r.commits, 2);

    // Replaying the same firing twice violates the semantics (the
    // instantiation is consumed by its own modify).
    let mut doubled = r.trace.clone();
    let first = doubled.firings[0].clone();
    doubled.firings.insert(1, first);
    let err = validate_trace(&rules, &initial, &doubled).unwrap_err();
    assert_eq!(err.at, 1);

    // Reordering across a dependency also fails: firing #2's matched WME
    // (fresh timestamp) does not exist before firing #1 committed.
    let mut swapped = r.trace.clone();
    swapped.firings.swap(0, 1);
    assert!(validate_trace(&rules, &initial, &swapped).is_err());
}

#[test]
fn admits_is_exact_for_the_base_scenario() {
    let sys = paper51_base();
    let g = ExecutionGraph::build(&sys, 10_000);
    // P3's commit deletes P1, so p3 then p1 is invalid...
    assert!(!g.admits(&[PId(2), PId(0)]));
    // ...but p1 before p3 is fine.
    assert!(g.admits(&[PId(0), PId(2)]));
    // A full valid order.
    assert!(g.admits(&[PId(0), PId(1), PId(2), PId(3)]));
}
