//! Differential testing of the two match substrates: Rete and TREAT are
//! independent implementations of the same specification, so on any
//! change stream their conflict sets must be identical. This is the
//! strongest correctness oracle we have for the matchers.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dbps::rete::{InstKey, Matcher, Rete, Treat};
use dbps::rules::RuleSet;
use dbps::wm::{Change, WmeData, WmeId, WorkingMemory};

/// A rule corpus exercising joins, intra-CE tests, ordering predicates,
/// negation (constant and bound-variable), and multi-way joins.
const CORPUS: &str = r#"
(p single (a ^k <x>) --> (remove 1))
(p join2 (a ^k <x>) (b ^k <x>) --> (remove 1))
(p join3 (a ^k <x>) (b ^k <x>) (c ^k <x>) --> (remove 1))
(p order (a ^k <x>) (b ^k > <x>) --> (remove 1))
(p intra (pair ^l <v> ^r <v>) --> (remove 1))
(p neg-const (a ^k <x>) -(hold) --> (remove 1))
(p neg-bound (a ^k <x>) -(hold ^k <x>) --> (remove 1))
(p neg-mid (a ^k <x>) -(veto ^k <x>) (b ^k <x>) --> (remove 1))
(p const-gate (a ^k <x> ^flag on) --> (remove 1))
(p disj (a ^k << 0 2 >>) --> (remove 1))
(p negneg (a ^k <x>) -(hold ^k <x>) -(veto ^k <x>) --> (remove 1))
(p join4 (a ^k <x>) (b ^k <x>) (c ^k <x>) (pair ^l <x>) --> (remove 1))
"#;

fn conflict_keys(m: &dyn Matcher) -> BTreeSet<InstKey> {
    m.conflict_set().iter().map(|i| i.key()).collect()
}

/// Applies a deterministic random stream of inserts/removes/modifies to
/// both matchers, checking equality after every step.
fn run_stream(seed: u64, steps: usize) {
    let rules = RuleSet::parse(CORPUS).unwrap();
    let mut wm = WorkingMemory::new();
    let mut rete = Rete::new(&rules, &wm);
    let mut treat = Treat::new(&rules, &wm);
    let mut rng = StdRng::seed_from_u64(seed);
    let classes = ["a", "b", "c", "pair", "hold", "veto"];
    let mut live: Vec<WmeId> = Vec::new();

    for step in 0..steps {
        let changes: Vec<Change> = if !live.is_empty() && rng.random_bool(0.35) {
            // Remove or modify an existing element.
            let idx = rng.random_range(0..live.len());
            let id = live[idx];
            if rng.random_bool(0.5) {
                live.swap_remove(idx);
                let w = wm.remove(id).unwrap();
                vec![Change::Removed(w)]
            } else {
                let mut delta = dbps::wm::DeltaSet::new();
                delta.modify(
                    id,
                    [(
                        dbps::wm::Atom::from("k"),
                        dbps::wm::Value::Int(rng.random_range(0..4)),
                    )],
                );
                wm.apply(&delta).unwrap()
            }
        } else {
            let class = classes[rng.random_range(0..classes.len())];
            let mut data = WmeData::new(class).with("k", rng.random_range(0..4i64));
            if class == "pair" {
                data.set("l", rng.random_range(0..3i64));
                data.set("r", rng.random_range(0..3i64));
            }
            if rng.random_bool(0.3) {
                data.set("flag", "on");
            }
            let w = wm.insert_full(data);
            live.push(w.id);
            vec![Change::Added(w)]
        };
        rete.apply(&changes);
        treat.apply(&changes);
        let (rk, tk) = (conflict_keys(&rete), conflict_keys(&treat));
        assert_eq!(
            rk, tk,
            "seed {seed}, step {step}: Rete and TREAT conflict sets diverged\nchanges: {changes:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rete_and_treat_agree_on_random_streams(seed in 0u64..1_000_000) {
        run_stream(seed, 60);
    }
}

#[test]
fn rete_and_treat_agree_on_long_stream() {
    run_stream(0xDEADBEEF, 500);
}

#[test]
fn bindings_and_wmes_also_agree() {
    // Beyond keys: the full instantiation payloads must match.
    let rules = RuleSet::parse(CORPUS).unwrap();
    let mut wm = WorkingMemory::new();
    for k in 0..3i64 {
        wm.insert(WmeData::new("a").with("k", k).with("flag", "on"));
        wm.insert(WmeData::new("b").with("k", k));
        wm.insert(WmeData::new("c").with("k", k));
    }
    let rete = Rete::new(&rules, &wm);
    let treat = Treat::new(&rules, &wm);
    let mut rete_insts: Vec<String> = rete.conflict_set().iter().map(|i| i.to_string()).collect();
    let mut treat_insts: Vec<String> = treat.conflict_set().iter().map(|i| i.to_string()).collect();
    rete_insts.sort();
    treat_insts.sort();
    assert_eq!(rete_insts, treat_insts);
    assert!(!rete_insts.is_empty());
}
