//! End-to-end tests of the multi-session front door.
//!
//! Two ISSUE-9 claims, checked from outside the crate through the wire
//! protocol only:
//!
//! * **Determinism across interleavings** — K concurrent sessions
//!   writing disjoint key namespaces converge to a working memory
//!   fingerprint-identical to the same K sessions driven one at a
//!   time. The fingerprint is content-based (class + sorted attrs,
//!   ignoring WME ids and timestamps), because ids and arrival order
//!   legitimately differ between schedules.
//! * **Disconnect safety at scale** — ~150 sessions killed
//!   mid-transaction by the `disconnects` chaos plan (dropped after
//!   `Begin`, dropped between writes and commit, stalled past the
//!   transaction budget) leave **zero** held locks, **zero** snapshot
//!   pins, and a commit history the §3 single-thread oracle accepts.

use std::collections::BTreeMap;
use std::time::Duration;

use dbps::engine::semantics::validate_trace;
use dbps::engine::ParallelConfig;
use dbps::rules::RuleSet;
use dbps::server::{
    loopback_pair, read_frame, write_frame, AdmissionConfig, LoopbackConn, Request, Response,
    Server, ServerConfig, SessionTimeouts,
};
use dbps::wm::{Value, WmeData, WorkingMemory};
use dps_bench::server_load::{run_leg, LoadSpec};

/// Class → multiset of (attr, value) rows, ignoring ids and
/// timestamps: the order-independent fingerprint of a working memory.
fn fingerprint(wm: &WorkingMemory) -> BTreeMap<String, Vec<String>> {
    let mut out: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for w in wm.iter() {
        let row: Vec<String> = w
            .data
            .attrs
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        out.entry(w.class().to_string())
            .or_default()
            .push(row.join(","));
    }
    for rows in out.values_mut() {
        rows.sort();
    }
    out
}

fn accumulator_rules() -> RuleSet {
    RuleSet::parse(
        "(p apply (delta ^key <k> ^v <v>) (acc ^key <k> ^total <t>)
           --> (remove 1) (modify 2 ^total (+ <t> <v>)))",
    )
    .unwrap()
}

fn acc_wm(keys: i64) -> WorkingMemory {
    let mut wm = WorkingMemory::new();
    for k in 0..keys {
        wm.insert(WmeData::new("acc").with("key", k).with("total", 0i64));
    }
    wm
}

fn rpc(conn: &mut LoopbackConn, req: &Request) -> Response {
    write_frame(conn, &req.encode()).unwrap();
    let body = read_frame(conn).unwrap().expect("response frame");
    Response::decode(&body).unwrap()
}

/// One session's whole script: `txns` transactions, each inserting one
/// delta into the session's own key range (`base .. base + keys`).
fn drive(mut conn: LoopbackConn, base: i64, keys: i64, txns: usize) {
    assert!(matches!(rpc(&mut conn, &Request::Hello), Response::Granted { .. }));
    for t in 0..txns {
        assert!(matches!(rpc(&mut conn, &Request::Begin), Response::Ok { .. }));
        let key = base + (t as i64 % keys);
        let req = Request::Insert {
            class: "delta".into(),
            attrs: vec![("key".into(), Value::Int(key)), ("v".into(), Value::Int(1))],
        };
        assert!(matches!(rpc(&mut conn, &req), Response::Ok { .. }));
        match rpc(&mut conn, &Request::Commit) {
            Response::Ok { seq } => assert!(seq > 0, "commit must carry a sequence"),
            other => panic!("commit failed: {other:?}"),
        }
    }
    assert!(matches!(rpc(&mut conn, &Request::Bye), Response::Bye));
}

/// Builds a K-session server over the disjoint-namespace workload and
/// runs it with the given client driver.
fn run_sessions(
    k: usize,
    keys_per_session: i64,
    txns: usize,
    concurrent: bool,
) -> (BTreeMap<String, Vec<String>>, usize) {
    let rules = accumulator_rules();
    let initial = acc_wm(k as i64 * keys_per_session);
    let server = Server::new(
        &rules,
        initial.clone(),
        ParallelConfig { workers: 3, ..ParallelConfig::default() },
        ServerConfig {
            admission: AdmissionConfig { enabled: false, ..AdmissionConfig::default() },
            // Sequential driving leaves later connections silent for a
            // while — no idle deadline, and a roomy transaction budget.
            timeouts: SessionTimeouts { idle_read: None, txn: Duration::from_secs(5) },
            stamp_session: true,
            stop: None,
        },
    );
    let mut server_ends = Vec::new();
    let mut client_ends = Vec::new();
    for _ in 0..k {
        let (a, b) = loopback_pair();
        server_ends.push(a);
        client_ends.push(b);
    }
    let report = std::thread::scope(|s| {
        let srv = s.spawn(|| server.run(server_ends));
        if concurrent {
            let handles: Vec<_> = client_ends
                .into_iter()
                .enumerate()
                .map(|(i, conn)| {
                    s.spawn(move || drive(conn, i as i64 * keys_per_session, keys_per_session, txns))
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        } else {
            for (i, conn) in client_ends.into_iter().enumerate() {
                drive(conn, i as i64 * keys_per_session, keys_per_session, txns);
            }
        }
        let (report, _) = srv.join().unwrap();
        report
    });
    assert_eq!(server.engine().held_locks(), 0, "lock leak after drain");
    assert_eq!(server.engine().snapshot_pins(), 0, "pin leak after drain");
    validate_trace(&rules, &initial, &report.trace).expect("§3 oracle must accept the history");
    (fingerprint(&server.engine().final_wm()), report.commits)
}

#[test]
fn concurrent_disjoint_sessions_match_sequential_fingerprint() {
    let (k, keys, txns) = (6usize, 4i64, 12usize);
    let (concurrent, c_commits) = run_sessions(k, keys, txns, true);
    let (sequential, s_commits) = run_sessions(k, keys, txns, false);
    // Every delta folded by exactly one rule firing, in both schedules.
    assert_eq!(c_commits, k * txns);
    assert_eq!(s_commits, k * txns);
    assert_eq!(
        concurrent, sequential,
        "concurrent and sequential schedules must converge to the same WM"
    );
    // And the converged state is the arithmetic truth: key j of session
    // i received ceil/floor(txns / keys) increments.
    let accs = &concurrent["acc"];
    assert_eq!(accs.len(), (k as i64 * keys) as usize);
    for (i, row) in accs.iter().enumerate() {
        let per_key = txns as i64 / keys + i64::from((i as i64 % keys) < (txns as i64 % keys));
        assert!(
            row.contains(&format!("total={per_key}")),
            "acc row {i} should have total {per_key}: {row}"
        );
    }
}

#[test]
fn hundred_disconnects_leak_nothing_and_replay() {
    // ~150 sessions, each with ~87% odds of dying mid-transaction over
    // its 8 transactions under the `disconnects` plan, gives well over
    // 100 injected mid-transaction deaths.
    let spec = LoadSpec {
        seed: 0x6B_2026,
        sessions: 8,
        chaos_sessions: 192,
        txns_per_session: 8,
        keys: 32,
        zipf_s: 1.0,
        workers: 3,
        txn_timeout_ms: 250,
        min_disconnects: 100,
        stop: None,
    };
    let leg = run_leg(&spec, "chaos", 0.0, 0.0, false, 0.0, true);
    assert!(
        leg.server.disconnects >= 100,
        "expected >= 100 injected disconnects, got {}",
        leg.server.disconnects
    );
    assert_eq!(leg.held_locks, 0, "disconnects leaked locks");
    assert_eq!(leg.snapshot_pins, 0, "disconnects leaked snapshot pins");
    assert_eq!(leg.replay, "consistent", "§3 oracle rejected the history");
    assert!(leg.reconciled(), "session books must balance after the storm");
}
