//! End-to-end tests for the trace-analysis layer: a real dynamic-engine
//! run under **both** lock protocols is analyzed from its event history
//! alone, and the §3-Theorem-2 checker must (a) pass on the genuine
//! run, (b) flag an *injected* out-of-order replay as `inconsistent`,
//! and (c) flag a corrupted commit sequence as a structural error —
//! the oracle is falsifiable, not a rubber stamp.

use dbps::engine::semantics::validate_trace;
use dbps::engine::{ParallelConfig, ParallelEngine, ParallelReport, WorkModel};
use dbps::lock::{ConflictPolicy, Protocol};
use dbps::obs::analysis::{analyze, RunAnalysis};
use dbps::obs::{validate_history, Event, EventKind, Recorder, Verdict};
use dbps::rules::RuleSet;
use dbps::wm::{WmeData, WorkingMemory};
use std::sync::Arc;

/// Heavy Rc–Wa conflict: `deltas` pending deltas all folded into one
/// shared accumulator. Every firing modifies the accumulator, so the
/// commit order is *strict*: replaying any two adjacent firings swapped
/// must fail (the second references a working-memory state the first
/// has not yet produced).
fn contended_workload(deltas: i64) -> (RuleSet, WorkingMemory) {
    let rules = RuleSet::parse(
        "(p apply (delta ^v <d>) (acc ^total <t>)
           --> (remove 1) (modify 2 ^total (+ <t> <d>)))",
    )
    .unwrap();
    let mut wm = WorkingMemory::new();
    for i in 1..=deltas {
        wm.insert(WmeData::new("delta").with("v", i));
    }
    wm.insert(WmeData::new("acc").with("total", 0i64));
    (rules, wm)
}

/// Runs the contended workload instrumented and returns everything the
/// analysis loop needs.
fn run(protocol: Protocol) -> (RuleSet, WorkingMemory, ParallelReport, Arc<Recorder>) {
    let (rules, wm) = contended_workload(16);
    let initial = wm.clone();
    let mut engine = ParallelEngine::new(
        &rules,
        wm,
        ParallelConfig {
            protocol,
            policy: ConflictPolicy::AbortReaders,
            workers: 4,
            work: WorkModel::FixedMicros(200),
            observe: true,
            ..Default::default()
        },
    );
    let report = engine.run();
    assert_eq!(report.commits, 16, "{protocol:?}: lost commits");
    let rec = engine.observer().expect("observe: true").clone();
    assert_eq!(rec.dropped(), 0);
    (rules, initial, report, rec)
}

/// The full analysis loop as `dps-bench` runs it, minus the printing.
fn analyzed(
    rules: &RuleSet,
    initial: &WorkingMemory,
    report: &ParallelReport,
    rec: &Recorder,
) -> RunAnalysis {
    let history = rec.history();
    validate_history(&history).expect("merged history well-formed");
    let mut analysis = analyze(&history);
    analysis.set_replay_result(
        validate_trace(rules, initial, &report.trace).map_err(|v| v.to_string()),
    );
    analysis
}

#[test]
fn both_protocols_analyze_consistent_end_to_end() {
    for protocol in [Protocol::RcRaWa, Protocol::TwoPhase] {
        let (rules, initial, report, rec) = run(protocol);
        let analysis = analyzed(&rules, &initial, &report, &rec);

        // Checker: consistent, with the full commit sequence recovered
        // from the event stream alone.
        assert_eq!(analysis.verdict(), Verdict::Consistent, "{protocol:?}");
        assert!(analysis.checker.structural_errors.is_empty(), "{protocol:?}");
        assert_eq!(analysis.checker.commits.len(), report.commits, "{protocol:?}");

        // The recovered rule sequence names the same rules as the trace.
        let names = rec.rule_names();
        let recovered: Vec<&str> = analysis
            .checker
            .rule_sequence()
            .iter()
            .map(|&id| names[id as usize].as_str())
            .collect();
        assert_eq!(recovered, report.trace.names(), "{protocol:?}");

        // Critical-path accounting is internally consistent.
        let c = &analysis.critical;
        assert_eq!(c.useful_busy_ns + c.wasted_ns, c.total_busy_ns, "{protocol:?}");
        assert!(c.critical_path_ns <= c.total_busy_ns, "{protocol:?}");
        assert!((0.0..=1.0).contains(&c.wasted_fraction), "{protocol:?}");
        assert!(!c.critical_path.is_empty(), "{protocol:?}");
        assert!(c.effective_parallelism >= 1.0 - 1e-9, "{protocol:?}");
    }
}

#[test]
fn injected_out_of_order_replay_is_flagged_inconsistent() {
    let (rules, initial, mut report, rec) = run(Protocol::RcRaWa);

    // Swap two adjacent firings: every firing of the accumulator
    // workload reads the previous firing's output, so the swapped
    // sequence is *not* a member of ES_single.
    report.trace.firings.swap(0, 1);
    let replay = validate_trace(&rules, &initial, &report.trace);
    assert!(replay.is_err(), "swapped commit order must fail §3 replay");

    let history = rec.history();
    let mut analysis = analyze(&history);
    assert!(
        analysis.checker.structural_errors.is_empty(),
        "the event stream itself is untouched"
    );
    analysis.set_replay_result(replay.map_err(|v| v.to_string()));
    assert_eq!(analysis.verdict(), Verdict::Inconsistent);
}

#[test]
fn corrupted_fire_seq_is_a_structural_error() {
    let (_, _, _, rec) = run(Protocol::RcRaWa);
    let mut history: Vec<Event> = rec.history();

    // Teleport one Fire record to a far-away slot: the recovered
    // sequence is no longer contiguous.
    let fire = history
        .iter_mut()
        .find(|e| matches!(e.kind, EventKind::Fire { .. }))
        .expect("instrumented run records Fire events");
    if let EventKind::Fire { rule, .. } = fire.kind {
        fire.kind = EventKind::Fire { rule, seq: 1_000_000 };
    }

    let analysis = analyze(&history);
    assert_eq!(analysis.verdict(), Verdict::Inconsistent);
    assert!(
        analysis
            .checker
            .structural_errors
            .iter()
            .any(|e| e.contains("sequence")),
        "expected a broken-sequence diagnostic, got {:?}",
        analysis.checker.structural_errors
    );
}

#[test]
fn swapped_commit_sequence_slots_are_a_structural_error() {
    let (_, _, _, rec) = run(Protocol::RcRaWa);
    let mut history: Vec<Event> = rec.history();

    // Swap the seq payloads of the first and last Fire records. The set
    // of slots stays contiguous, but the commit timestamps now disagree
    // with the claimed order — the checker's timestamp cross-check
    // (commit order == trace-append order, both under the engine's
    // commit critical section) must catch it.
    let fires: Vec<usize> = history
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.kind, EventKind::Fire { .. }))
        .map(|(i, _)| i)
        .collect();
    assert!(fires.len() >= 2);
    let (a, b) = (fires[0], *fires.last().unwrap());
    let (ka, kb) = (history[a].kind, history[b].kind);
    if let (EventKind::Fire { rule: ra, seq: sa }, EventKind::Fire { rule: rb, seq: sb }) =
        (ka, kb)
    {
        assert_ne!(sa, sb);
        history[a].kind = EventKind::Fire { rule: ra, seq: sb };
        history[b].kind = EventKind::Fire { rule: rb, seq: sa };
    }

    let analysis = analyze(&history);
    assert_eq!(analysis.verdict(), Verdict::Inconsistent);
    assert!(!analysis.checker.structural_errors.is_empty());
}
