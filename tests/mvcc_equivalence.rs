//! MVCC equivalence and falsifiability, end to end.
//!
//! The seed-loop property test drives the streaming false-conflict
//! workload through every conflict policy (lock-based `AbortReaders` /
//! `Revalidate` and the snapshot-read `MvccSnapshot`) at match-shard
//! counts {1, 2, 8}, under a seeded doom-storm fault plan so schedules
//! actually differ between runs. Every run must drain, replay through
//! the §3 Theorem-2 oracle, and converge to the *same* final working
//! memory — and the MVCC runs must do it with zero condition-read
//! aborts while their histories pass the SI/serializability polygraph.
//!
//! The falsifiability half mirrors `tests/analysis.rs` for the SI
//! checker: a genuine MVCC history passes, and targeted corruptions —
//! a version read that observed a version nobody installed, and two
//! transactions' installed version sequences swapped — are rejected.

use std::collections::BTreeMap;

use dbps::engine::semantics::validate_trace;
use dbps::engine::{ParallelConfig, ParallelEngine, WorkModel};
use dbps::lock::{ConflictPolicy, FaultPlan, Protocol};
use dbps::obs::analysis::si_checker;
use dbps::obs::{validate_history, Event, EventKind, Verdict};
use dbps::wm::WorkingMemory;
use dps_bench::workloads;

/// Class → multiset of (attr, value) rows, ignoring ids and timestamps:
/// the order-independent fingerprint of a working memory.
fn fingerprint(wm: &WorkingMemory) -> BTreeMap<String, Vec<String>> {
    let mut out: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for w in wm.iter() {
        let row: Vec<String> = w
            .data
            .attrs
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        out.entry(w.class().to_string())
            .or_default()
            .push(row.join(","));
    }
    for rows in out.values_mut() {
        rows.sort();
    }
    out
}

#[test]
fn every_policy_and_shard_count_converges_under_chaos() {
    let (guards, g_steps, producers, p_steps) = (4usize, 3i64, 4usize, 3i64);
    let expected = guards * g_steps as usize + producers * p_steps as usize;
    for seed in [1u64, 42, 0xBEEF] {
        let (rules, wm) = workloads::false_conflict_stream(guards, g_steps, producers, p_steps);
        let mut fingerprints = Vec::new();
        for policy in [
            ConflictPolicy::AbortReaders,
            ConflictPolicy::Revalidate,
            ConflictPolicy::MvccSnapshot,
        ] {
            for shards in [1usize, 2, 8] {
                let label = format!("seed {seed:#x} / {policy:?} / {shards} shards");
                let mut engine = ParallelEngine::new(
                    &rules,
                    wm.clone(),
                    ParallelConfig {
                        protocol: Protocol::RcRaWa,
                        policy,
                        workers: 4,
                        match_shards: shards,
                        work: WorkModel::FixedMicros(50),
                        fault: Some(FaultPlan::doom_storm(seed)),
                        observe: true,
                        ..Default::default()
                    },
                );
                let report = engine.run();
                assert_eq!(report.commits, expected, "{label}: lost commits");
                validate_trace(&rules, &wm, &report.trace)
                    .unwrap_or_else(|v| panic!("{label}: §3 replay rejected: {v}"));
                let rec = engine.observer().expect("observe: true");
                let history = rec.history();
                validate_history(&history)
                    .unwrap_or_else(|e| panic!("{label}: malformed history: {e}"));
                if policy == ConflictPolicy::MvccSnapshot {
                    assert_eq!(
                        report.aborts.reader_aborts(),
                        0,
                        "{label}: condition-read aborts under MVCC"
                    );
                    let si = si_checker::check_history(&history);
                    assert_eq!(
                        si.verdict(),
                        Verdict::Consistent,
                        "{label}: SI polygraph rejected a genuine run: {:?} {:?}",
                        si.violations,
                        si.cycle
                    );
                    assert_eq!(si.committed, expected, "{label}: polygraph lost commits");
                }
                fingerprints.push((label, fingerprint(&engine.final_wm())));
            }
        }
        for pair in fingerprints.windows(2) {
            assert_eq!(
                pair[0].1, pair[1].1,
                "final states diverge between {} and {}",
                pair[0].0, pair[1].0
            );
        }
    }
}

/// One instrumented MVCC run of the streaming workload (no faults) and
/// its merged event history.
fn mvcc_history() -> (usize, Vec<Event>) {
    let (rules, wm) = workloads::false_conflict_stream(3, 4, 3, 4);
    let expected = 3 * 4 + 3 * 4;
    let mut engine = ParallelEngine::new(
        &rules,
        wm.clone(),
        ParallelConfig {
            protocol: Protocol::RcRaWa,
            policy: ConflictPolicy::MvccSnapshot,
            workers: 4,
            work: WorkModel::FixedMicros(50),
            observe: true,
            ..Default::default()
        },
    );
    let report = engine.run();
    assert_eq!(report.commits, expected);
    validate_trace(&rules, &wm, &report.trace).unwrap();
    let rec = engine.observer().expect("observe: true");
    (expected, rec.history())
}

#[test]
fn genuine_mvcc_history_passes_the_polygraph() {
    let (expected, history) = mvcc_history();
    let rep = si_checker::check_history(&history);
    assert_eq!(rep.committed, expected);
    assert!(rep.violations.is_empty(), "{:?}", rep.violations);
    assert!(rep.cycle.is_none(), "{:?}", rep.cycle);
    assert_eq!(rep.verdict(), Verdict::Consistent);
}

#[test]
fn phantom_version_read_is_rejected() {
    let (_, mut history) = mvcc_history();
    // Claim some condition read observed a version nobody installed:
    // the snapshot-consistency check must flag it.
    let read = history
        .iter_mut()
        .find(|e| matches!(e.kind, EventKind::VersionRead { .. }))
        .expect("MVCC run records version reads");
    if let EventKind::VersionRead { resource, .. } = read.kind {
        read.kind = EventKind::VersionRead {
            resource,
            seq: 999_999,
        };
    }
    let rep = si_checker::check_history(&history);
    assert_eq!(rep.verdict(), Verdict::Inconsistent);
    assert!(
        !rep.violations.is_empty(),
        "a phantom read must surface as an SI violation"
    );
}

#[test]
fn swapped_version_install_order_is_rejected() {
    let (_, mut history) = mvcc_history();
    // Swap the installed version sequences of two different committed
    // transactions, as if the version store interchanged their chains.
    // Each now disagrees with its own commit slot (version = fire + 1),
    // so the version-order cross-check must reject.
    let writes: Vec<usize> = history
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.kind, EventKind::VersionWrite { .. }))
        .map(|(i, _)| i)
        .collect();
    let (a, b) = (writes[0], *writes.last().unwrap());
    assert_ne!(
        history[a].txn, history[b].txn,
        "corruption needs two distinct writers"
    );
    let (ka, kb) = (history[a].kind, history[b].kind);
    if let (
        EventKind::VersionWrite { resource: ra, seq: sa },
        EventKind::VersionWrite { resource: rb, seq: sb },
    ) = (ka, kb)
    {
        assert_ne!(sa, sb);
        history[a].kind = EventKind::VersionWrite { resource: ra, seq: sb };
        history[b].kind = EventKind::VersionWrite { resource: rb, seq: sa };
    }
    let rep = si_checker::check_history(&history);
    assert_eq!(rep.verdict(), Verdict::Inconsistent);
    assert!(
        rep.violations
            .iter()
            .any(|v| v.contains("disagrees with commit slot") || v.contains("latest committed")),
        "expected a version-order diagnostic, got {:?}",
        rep.violations
    );
}
