//! Integration tests for §4: the lock protocols end to end (E4.1–E4.4),
//! including blocking behaviour across real threads.

use std::sync::Arc;
use std::time::Duration;

use dbps::lock::{
    compatible, ConflictPolicy, LockError, LockManager, LockMode, Protocol, ResourceId,
};

fn tup(n: u64) -> ResourceId {
    ResourceId::Tuple(n)
}

#[test]
fn e4_1_table_rows_and_protocol_mapping() {
    use LockMode::*;
    // Table 4.1 summary invariants.
    assert!(
        compatible(Rc, Wa) && !compatible(Wa, Rc),
        "the asymmetric novelty"
    );
    for m in [Rc, Ra, Wa] {
        assert!(!compatible(Wa, m), "Wa row is all N");
        assert!(compatible(Rc, m), "Rc row is all Y");
    }
    // Figure 4.1 vs 4.2 mode mapping.
    assert_eq!(Protocol::TwoPhase.condition_read(), S);
    assert_eq!(Protocol::RcRaWa.condition_read(), Rc);
    assert_eq!(Protocol::RcRaWa.action_write(), Wa);
}

#[test]
fn e4_2_condition_evaluation_overlaps_inflight_writer_only_under_rc() {
    // Scenario: a writer is mid-RHS holding its write lock; a *new*
    // production wants to start evaluating its condition on a different
    // item, and also read the written item.
    // Under Table 4.1, Rc under Wa is still refused (Wa row is N) — the
    // enhanced parallelism is the *other* direction (Wa granted under
    // Rc). Verify both directions precisely.
    let lm = LockManager::new(ConflictPolicy::AbortReaders);
    let (writer, reader) = (lm.begin(), lm.begin());
    lm.lock(reader, tup(1), LockMode::Rc).unwrap();
    // Writer proceeds despite the reader — this is what 2PL forbids.
    assert_eq!(lm.try_lock(writer, tup(1), LockMode::Wa), Ok(true));
    // A late reader cannot start under the in-flight writer.
    let late = lm.begin();
    assert_eq!(lm.try_lock(late, tup(1), LockMode::Rc), Ok(false));

    // The 2PL baseline blocks the writer in the same situation.
    let lm2 = LockManager::new(ConflictPolicy::AbortReaders);
    let (w2, r2) = (lm2.begin(), lm2.begin());
    lm2.lock(r2, tup(1), LockMode::S).unwrap();
    assert_eq!(lm2.try_lock(w2, tup(1), LockMode::X), Ok(false));
}

#[test]
fn e4_3_commit_order_decides_reader_fate() {
    // (a) reader first → both commit; (b) writer first → reader aborts.
    for writer_first in [false, true] {
        let lm = LockManager::new(ConflictPolicy::AbortReaders);
        let (pj, pi) = (lm.begin(), lm.begin());
        lm.lock(pj, tup(1), LockMode::Rc).unwrap();
        lm.lock(pi, tup(1), LockMode::Wa).unwrap();
        if writer_first {
            assert_eq!(lm.commit(pi).unwrap().doomed_readers, vec![pj]);
            assert!(matches!(
                lm.commit(pj),
                Err(LockError::DoomedByWriter { txn, by }) if txn == pj && by == pi
            ));
        } else {
            assert!(lm.commit(pj).unwrap().doomed_readers.is_empty());
            assert!(lm.commit(pi).unwrap().doomed_readers.is_empty());
        }
    }
}

#[test]
fn e4_4_circular_conflict_exactly_one_survivor_either_way() {
    for pi_first in [true, false] {
        let lm = LockManager::new(ConflictPolicy::AbortReaders);
        let (pi, pj) = (lm.begin(), lm.begin());
        lm.lock(pi, tup(1), LockMode::Rc).unwrap();
        lm.lock(pj, tup(2), LockMode::Rc).unwrap();
        lm.lock(pi, tup(2), LockMode::Wa).unwrap();
        lm.lock(pj, tup(1), LockMode::Wa).unwrap();
        let (first, second) = if pi_first { (pi, pj) } else { (pj, pi) };
        assert_eq!(lm.commit(first).unwrap().doomed_readers, vec![second]);
        assert!(lm.commit(second).is_err());
        let (commits, aborts) = lm.counters();
        assert_eq!((commits, aborts), (1, 1));
    }
}

#[test]
fn blocked_two_phase_writer_proceeds_after_reader_commit() {
    let lm = Arc::new(LockManager::new(ConflictPolicy::AbortReaders));
    let reader = lm.begin();
    let writer = lm.begin();
    lm.lock(reader, tup(7), LockMode::S).unwrap();
    let lm2 = Arc::clone(&lm);
    let handle = std::thread::spawn(move || {
        lm2.lock(writer, tup(7), LockMode::X)?;
        lm2.commit(writer)
    });
    std::thread::sleep(Duration::from_millis(20));
    lm.commit(reader).unwrap();
    assert!(handle.join().unwrap().is_ok());
}

#[test]
fn doomed_reader_waiting_on_another_lock_is_woken_with_the_doom() {
    // Reader holds Rc(q) and is blocked waiting for a lock held by a
    // third party; the writer commits Wa(q); the reader must wake with
    // the doom rather than wait forever.
    let lm = Arc::new(LockManager::new(ConflictPolicy::AbortReaders));
    let holder = lm.begin();
    let reader = lm.begin();
    let writer = lm.begin();
    lm.lock(holder, tup(2), LockMode::Wa).unwrap();
    lm.lock(reader, tup(1), LockMode::Rc).unwrap();
    let lm2 = Arc::clone(&lm);
    let blocked = std::thread::spawn(move || lm2.lock(reader, tup(2), LockMode::Ra));
    std::thread::sleep(Duration::from_millis(20));
    lm.lock(writer, tup(1), LockMode::Wa).unwrap();
    lm.commit(writer).unwrap();
    let err = blocked.join().unwrap().unwrap_err();
    assert!(matches!(err, LockError::DoomedByWriter { by, .. } if by == writer));
    lm.commit(holder).unwrap();
}

#[test]
fn revalidate_policy_reports_but_does_not_kill() {
    let lm = LockManager::new(ConflictPolicy::Revalidate);
    let (pj, pi) = (lm.begin(), lm.begin());
    lm.lock(pj, tup(1), LockMode::Rc).unwrap();
    lm.lock(pi, tup(1), LockMode::Wa).unwrap();
    let o = lm.commit(pi).unwrap();
    assert_eq!(o.needs_revalidation, vec![pj]);
    assert!(o.doomed_readers.is_empty());
    // The engine decided revalidation passed: the reader commits fine.
    assert!(lm.commit(pj).is_ok());
}

#[test]
fn deadlock_between_two_phase_writers_is_broken() {
    let lm = Arc::new(LockManager::new(ConflictPolicy::AbortReaders));
    let a = lm.begin();
    let b = lm.begin();
    lm.lock(a, tup(1), LockMode::X).unwrap();
    lm.lock(b, tup(2), LockMode::X).unwrap();
    let lm2 = Arc::clone(&lm);
    let hb = std::thread::spawn(move || lm2.lock(b, tup(1), LockMode::X));
    std::thread::sleep(Duration::from_millis(20));
    let ra = lm.lock(a, tup(2), LockMode::X);
    let rb = hb.join().unwrap();
    // Exactly one aborts (the younger: b).
    assert!(ra.is_ok());
    assert_eq!(rb.unwrap_err(), LockError::Deadlock(b));
}

#[test]
fn many_concurrent_rc_readers_one_writer_all_resolve() {
    let lm = Arc::new(LockManager::new(ConflictPolicy::AbortReaders));
    let readers: Vec<_> = (0..6).map(|_| lm.begin()).collect();
    for &r in &readers {
        lm.lock(r, tup(1), LockMode::Rc).unwrap();
    }
    let writer = lm.begin();
    lm.lock(writer, tup(1), LockMode::Wa).unwrap();
    let outcome = lm.commit(writer).unwrap();
    assert_eq!(
        outcome.doomed_readers.len(),
        6,
        "all overlapped readers doomed"
    );
    for &r in &readers {
        assert!(lm.commit(r).is_err());
    }
    let (commits, aborts) = lm.counters();
    assert_eq!((commits, aborts), (1, 6));
}
