//! Property tests for the rule DSL: `parse(display(rule)) == rule` for
//! randomly generated valid rules, plus idempotence of the canonical
//! rendering.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dbps::rules::parser::{parse_rule, parse_rules};
use dbps::rules::{
    Action, AttrTest, Condition, ConditionElement, Expr, Op, Predicate, Rule, TestAtom,
};
use dbps::wm::{Atom, Value};

fn sym(rng: &mut StdRng, prefix: &str) -> Atom {
    Atom::from(format!("{prefix}{}", rng.random_range(0..8)))
}

fn constant(rng: &mut StdRng) -> Value {
    match rng.random_range(0..6) {
        0 => Value::Int(rng.random_range(-100..100)),
        // Fractional part keeps Display from printing an integer form
        // (which would re-parse as Int).
        1 => Value::Float(f64::from(rng.random_range(-50..50i32)) + 0.25),
        2 => Value::Sym(sym(rng, "s")),
        3 => Value::Str(Atom::from(format!("txt {}", rng.random_range(0..9)))),
        4 => Value::Bool(rng.random_bool(0.5)),
        _ => Value::Nil,
    }
}

fn predicate(rng: &mut StdRng) -> Predicate {
    [
        Predicate::Eq,
        Predicate::Ne,
        Predicate::Lt,
        Predicate::Le,
        Predicate::Gt,
        Predicate::Ge,
    ][rng.random_range(0..6)]
}

fn expr(rng: &mut StdRng, bound: &[Atom], depth: usize) -> Expr {
    if depth > 0 && rng.random_bool(0.5) {
        let op = [Op::Add, Op::Sub, Op::Mul, Op::Div, Op::Mod][rng.random_range(0..5)];
        Expr::bin(op, expr(rng, bound, depth - 1), expr(rng, bound, depth - 1))
    } else if !bound.is_empty() && rng.random_bool(0.5) {
        Expr::Var(bound[rng.random_range(0..bound.len())].clone())
    } else {
        // Numeric constants only (symbols in arithmetic would still
        // parse; keep it tidy).
        Expr::Const(Value::Int(rng.random_range(-20..20)))
    }
}

/// Generates a structurally valid random rule.
fn random_rule(seed: u64) -> Rule {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bound: Vec<Atom> = Vec::new();
    let n_pos = rng.random_range(1..4usize);
    let mut conditions = Vec::new();
    for ci in 0..n_pos {
        let mut tests = Vec::new();
        for _ in 0..rng.random_range(0..4usize) {
            let attr = sym(&mut rng, "a");
            match rng.random_range(0..3) {
                0 => tests.push(AttrTest {
                    attr,
                    predicate: predicate(&mut rng),
                    operand: TestAtom::Const(constant(&mut rng)),
                }),
                1 => {
                    let var = sym(&mut rng, "v");
                    if !bound.contains(&var) {
                        bound.push(var.clone());
                    }
                    tests.push(AttrTest {
                        attr,
                        predicate: Predicate::Eq,
                        operand: TestAtom::Var(var),
                    });
                }
                _ => {
                    if let Some(var) = bound.first().cloned() {
                        tests.push(AttrTest {
                            attr,
                            predicate: predicate(&mut rng),
                            operand: TestAtom::Var(var),
                        });
                    }
                }
            }
        }
        conditions.push(Condition::Pos(ConditionElement {
            class: sym(&mut rng, "c"),
            tests,
        }));
        // Optionally a negated CE referencing only bound/local vars.
        if ci + 1 < n_pos && rng.random_bool(0.3) {
            let mut tests = vec![AttrTest {
                attr: sym(&mut rng, "a"),
                predicate: Predicate::Eq,
                operand: TestAtom::Const(constant(&mut rng)),
            }];
            if let Some(var) = bound.first().cloned() {
                tests.push(AttrTest {
                    attr: sym(&mut rng, "a"),
                    predicate: Predicate::Eq,
                    operand: TestAtom::Var(var),
                });
            }
            conditions.push(Condition::Neg(ConditionElement {
                class: sym(&mut rng, "n"),
                tests,
            }));
        }
    }
    let mut actions = Vec::new();
    for _ in 0..rng.random_range(0..4usize) {
        match rng.random_range(0..3) {
            0 => actions.push(Action::Make {
                class: sym(&mut rng, "m"),
                attrs: (0..rng.random_range(0..3usize))
                    .map(|_| (sym(&mut rng, "a"), expr(&mut rng, &bound, 2)))
                    .collect(),
            }),
            1 => actions.push(Action::Modify {
                ce: rng.random_range(1..=n_pos),
                attrs: (0..rng.random_range(1..3usize))
                    .map(|_| (sym(&mut rng, "a"), expr(&mut rng, &bound, 2)))
                    .collect(),
            }),
            _ => actions.push(Action::Remove {
                ce: rng.random_range(1..=n_pos),
            }),
        }
    }
    if rng.random_bool(0.2) {
        actions.push(Action::Halt);
    }
    let rule = Rule {
        name: sym(&mut rng, "rule-"),
        salience: rng.random_range(-5..6),
        conditions,
        actions,
    };
    rule.validate().expect("generator emits valid rules");
    rule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_parse_roundtrip(seed in 0u64..100_000) {
        let rule = random_rule(seed);
        let rendered = rule.to_string();
        let reparsed = parse_rule(&rendered)
            .unwrap_or_else(|e| panic!("render of seed {seed} failed to reparse: {e}\n{rendered}"));
        prop_assert_eq!(&rule, &reparsed, "seed {} roundtrip:\n{}", seed, rendered);
        // Canonical rendering is a fixed point.
        prop_assert_eq!(rendered.clone(), reparsed.to_string());
    }

    #[test]
    fn rulesets_roundtrip_in_bulk(seed in 0u64..10_000) {
        let rules: Vec<Rule> = (0..4).map(|i| {
            let mut r = random_rule(seed * 4 + i);
            r.name = Atom::from(format!("r{i}"));
            r
        }).collect();
        let src: String = rules.iter().map(|r| format!("{r}\n")).collect();
        let parsed = parse_rules(&src).unwrap();
        prop_assert_eq!(rules, parsed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser must never panic, whatever bytes arrive: it returns
    /// `Ok` or a positioned `Err`.
    #[test]
    fn parser_never_panics_on_garbage(src in "\\PC{0,60}") {
        let _ = parse_rules(&src);
        let _ = parse_rule(&src);
        let _ = dbps::rules::parser::parse_condition_element(&src);
    }

    /// Structured-looking garbage (balanced-ish s-expressions) also
    /// never panics.
    #[test]
    fn parser_never_panics_on_sexpr_soup(
        parts in proptest::collection::vec(
            proptest::sample::select(vec![
                "(", ")", "{", "}", "p", "-->", "-", "^a", "<x>", "<", ">",
                "<<", ">>", "<>", "<=", ">=", "=", "1", "-2", "2.5", "sym",
                "\"s\"", "make", "modify", "remove", "halt", "salience", ";c",
            ]),
            0..40,
        )
    ) {
        let src = parts.join(" ");
        let _ = parse_rules(&src);
    }
}

#[test]
fn specific_tricky_renders() {
    // Negative literals, nested arithmetic, conjunctive brace groups,
    // every predicate, every constant type.
    let src = r#"
        (p tricky (salience -3)
           (c0 ^a0 { > -7 <v0> } ^a1 <> s1 ^a2 2.25 ^a3 "x y" ^a4 nil ^a5 false)
           -(n0 ^a0 <v0>)
           (c1 ^a6 >= <v0>)
           -->
           (modify 2 ^a7 (% (* <v0> -2) 7))
           (remove 1)
           (halt))
    "#;
    let r1 = parse_rule(src).unwrap();
    let r2 = parse_rule(&r1.to_string()).unwrap();
    assert_eq!(r1, r2);
}
