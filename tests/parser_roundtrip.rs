//! Property tests for the rule DSL: `parse(display(rule)) == rule` for
//! randomly generated valid rules, plus idempotence of the canonical
//! rendering and never-panic robustness on garbage input.
//!
//! Generation is driven by the workspace's deterministic PRNG; every
//! case reproduces from its printed seed.

use dbps::rules::parser::{parse_rule, parse_rules};
use dbps::rules::{
    Action, AttrTest, Condition, ConditionElement, Expr, Op, Predicate, Rule, TestAtom,
};
use dbps::wm::rng::SmallRng;
use dbps::wm::{Atom, Value};

fn sym(rng: &mut SmallRng, prefix: &str) -> Atom {
    Atom::from(format!("{prefix}{}", rng.index(8)))
}

fn constant(rng: &mut SmallRng) -> Value {
    match rng.index(6) {
        0 => Value::Int(rng.range_i64(-100, 100)),
        // Fractional part keeps Display from printing an integer form
        // (which would re-parse as Int).
        1 => Value::Float(rng.range_i64(-50, 50) as f64 + 0.25),
        2 => Value::Sym(sym(rng, "s")),
        3 => Value::Str(Atom::from(format!("txt {}", rng.index(9)))),
        4 => Value::Bool(rng.random_bool(0.5)),
        _ => Value::Nil,
    }
}

fn predicate(rng: &mut SmallRng) -> Predicate {
    [
        Predicate::Eq,
        Predicate::Ne,
        Predicate::Lt,
        Predicate::Le,
        Predicate::Gt,
        Predicate::Ge,
    ][rng.index(6)]
}

fn expr(rng: &mut SmallRng, bound: &[Atom], depth: usize) -> Expr {
    if depth > 0 && rng.random_bool(0.5) {
        let op = [Op::Add, Op::Sub, Op::Mul, Op::Div, Op::Mod][rng.index(5)];
        Expr::bin(op, expr(rng, bound, depth - 1), expr(rng, bound, depth - 1))
    } else if !bound.is_empty() && rng.random_bool(0.5) {
        Expr::Var(bound[rng.index(bound.len())].clone())
    } else {
        // Numeric constants only (symbols in arithmetic would still
        // parse; keep it tidy).
        Expr::Const(Value::Int(rng.range_i64(-20, 20)))
    }
}

/// Generates a structurally valid random rule.
fn random_rule(seed: u64) -> Rule {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut bound: Vec<Atom> = Vec::new();
    let n_pos = 1 + rng.index(3);
    let mut conditions = Vec::new();
    for ci in 0..n_pos {
        let mut tests = Vec::new();
        for _ in 0..rng.index(4) {
            let attr = sym(&mut rng, "a");
            match rng.index(3) {
                0 => tests.push(AttrTest {
                    attr,
                    predicate: predicate(&mut rng),
                    operand: TestAtom::Const(constant(&mut rng)),
                }),
                1 => {
                    let var = sym(&mut rng, "v");
                    if !bound.contains(&var) {
                        bound.push(var.clone());
                    }
                    tests.push(AttrTest {
                        attr,
                        predicate: Predicate::Eq,
                        operand: TestAtom::Var(var),
                    });
                }
                _ => {
                    if let Some(var) = bound.first().cloned() {
                        tests.push(AttrTest {
                            attr,
                            predicate: predicate(&mut rng),
                            operand: TestAtom::Var(var),
                        });
                    }
                }
            }
        }
        conditions.push(Condition::Pos(ConditionElement {
            class: sym(&mut rng, "c"),
            tests,
        }));
        // Optionally a negated CE referencing only bound/local vars.
        if ci + 1 < n_pos && rng.random_bool(0.3) {
            let mut tests = vec![AttrTest {
                attr: sym(&mut rng, "a"),
                predicate: Predicate::Eq,
                operand: TestAtom::Const(constant(&mut rng)),
            }];
            if let Some(var) = bound.first().cloned() {
                tests.push(AttrTest {
                    attr: sym(&mut rng, "a"),
                    predicate: Predicate::Eq,
                    operand: TestAtom::Var(var),
                });
            }
            conditions.push(Condition::Neg(ConditionElement {
                class: sym(&mut rng, "n"),
                tests,
            }));
        }
    }
    let mut actions = Vec::new();
    for _ in 0..rng.index(4) {
        match rng.index(3) {
            0 => actions.push(Action::Make {
                class: sym(&mut rng, "m"),
                attrs: (0..rng.index(3))
                    .map(|_| (sym(&mut rng, "a"), expr(&mut rng, &bound, 2)))
                    .collect(),
            }),
            1 => actions.push(Action::Modify {
                ce: 1 + rng.index(n_pos),
                attrs: (0..1 + rng.index(2))
                    .map(|_| (sym(&mut rng, "a"), expr(&mut rng, &bound, 2)))
                    .collect(),
            }),
            _ => actions.push(Action::Remove {
                ce: 1 + rng.index(n_pos),
            }),
        }
    }
    if rng.random_bool(0.2) {
        actions.push(Action::Halt);
    }
    let rule = Rule {
        name: sym(&mut rng, "rule-"),
        salience: rng.range_i64(-5, 6) as i32,
        conditions,
        actions,
    };
    rule.validate().expect("generator emits valid rules");
    rule
}

#[test]
fn display_parse_roundtrip() {
    for seed in 0..256u64 {
        let rule = random_rule(seed);
        let rendered = rule.to_string();
        let reparsed = parse_rule(&rendered)
            .unwrap_or_else(|e| panic!("render of seed {seed} failed to reparse: {e}\n{rendered}"));
        assert_eq!(rule, reparsed, "seed {seed} roundtrip:\n{rendered}");
        // Canonical rendering is a fixed point.
        assert_eq!(rendered, reparsed.to_string(), "seed {seed}");
    }
}

#[test]
fn rulesets_roundtrip_in_bulk() {
    for seed in 0..64u64 {
        let rules: Vec<Rule> = (0..4)
            .map(|i| {
                let mut r = random_rule(seed * 4 + i);
                r.name = Atom::from(format!("r{i}"));
                r
            })
            .collect();
        let src: String = rules.iter().map(|r| format!("{r}\n")).collect();
        let parsed = parse_rules(&src).unwrap();
        assert_eq!(rules, parsed, "seed {seed}");
    }
}

/// The parser must never panic, whatever bytes arrive: it returns
/// `Ok` or a positioned `Err`.
#[test]
fn parser_never_panics_on_garbage() {
    // A char palette mixing ASCII, structure, and multibyte text.
    const PALETTE: &[char] = &[
        '(', ')', '{', '}', '^', '<', '>', '-', '=', '"', ';', ' ', '\n', '\t', 'p', 'a', 'x',
        '0', '1', '9', '.', '\\', 'é', '→', '∅', '☃', '\u{0}', '\u{7f}',
    ];
    for seed in 0..512u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = rng.index(61);
        let src: String = (0..len).map(|_| PALETTE[rng.index(PALETTE.len())]).collect();
        let _ = parse_rules(&src);
        let _ = parse_rule(&src);
        let _ = dbps::rules::parser::parse_condition_element(&src);
    }
}

/// Structured-looking garbage (balanced-ish s-expressions) also
/// never panics.
#[test]
fn parser_never_panics_on_sexpr_soup() {
    const TOKENS: &[&str] = &[
        "(", ")", "{", "}", "p", "-->", "-", "^a", "<x>", "<", ">", "<<", ">>", "<>", "<=", ">=",
        "=", "1", "-2", "2.5", "sym", "\"s\"", "make", "modify", "remove", "halt", "salience",
        ";c",
    ];
    for seed in 0..512u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.index(41);
        let parts: Vec<&str> = (0..n).map(|_| TOKENS[rng.index(TOKENS.len())]).collect();
        let src = parts.join(" ");
        let _ = parse_rules(&src);
    }
}

#[test]
fn specific_tricky_renders() {
    // Negative literals, nested arithmetic, conjunctive brace groups,
    // every predicate, every constant type.
    let src = r#"
        (p tricky (salience -3)
           (c0 ^a0 { > -7 <v0> } ^a1 <> s1 ^a2 2.25 ^a3 "x y" ^a4 nil ^a5 false)
           -(n0 ^a0 <v0>)
           (c1 ^a6 >= <v0>)
           -->
           (modify 2 ^a7 (% (* <v0> -2) 7))
           (remove 1)
           (halt))
    "#;
    let r1 = parse_rule(src).unwrap();
    let r2 = parse_rule(&r1.to_string()).unwrap();
    assert_eq!(r1, r2);
}
