//! X6 — property-based verification of the semantic-consistency
//! condition (Definition 3.2): for randomly generated systems, every
//! schedule any of our mechanisms produces must lie inside `ES_single`.
//!
//! Parameters are drawn from the workspace's deterministic PRNG; each
//! case reproduces from its printed seed.

use dbps::engine::abstract_model::fmt_seq;
use dbps::engine::semantics::{validate_trace, ExecutionGraph};
use dbps::engine::{
    EngineConfig, ParallelConfig, ParallelEngine, SingleThreadEngine, StaticConfig,
    StaticParallelEngine,
};
use dbps::lock::{ConflictPolicy, Protocol};
use dbps::rete::Strategy;
use dbps::rules::RuleSet;
use dbps::sim::generator::{generate, GeneratorConfig};
use dbps::sim::simulate_multi;
use dbps::wm::rng::SmallRng;
use dbps::wm::{WmeData, WorkingMemory};

/// The §5 simulator's multi-thread commit sequences are always
/// root-originating paths of the execution graph.
#[test]
fn simulator_schedules_admitted_by_execution_graph() {
    for seed in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 2 + rng.index(7);
        let density = rng.random_f64() * 0.6;
        let max_t = rng.range_u64(1, 4);
        let gen_seed = rng.range_u64(0, 999);
        let np = 1 + rng.index(5);
        let sys = generate(&GeneratorConfig {
            productions: n,
            conflict_density: density,
            add_density: 0.0,
            time_range: (1, max_t),
            seed: gen_seed,
        });
        let g = ExecutionGraph::build(&sys, 500_000);
        if g.truncated() {
            continue; // graph too large to serve as an oracle — skip
        }
        let m = simulate_multi(&sys, np);
        assert!(
            g.admits(&m.commit_seq),
            "seed {seed}: Np={np} sequence '{}' not in ES_single",
            fmt_seq(&m.commit_seq)
        );
    }
}

/// Random-strategy single-thread runs produce valid traces and a
/// unique confluent result on the coin-collecting workload.
#[test]
fn random_strategy_single_thread_traces_validate() {
    for seed in 0..64u64 {
        let rules = RuleSet::parse(
            "(p take (coin ^v <v>) (purse ^sum <s>)
               --> (remove 1) (modify 2 ^sum (+ <s> <v>)))",
        )
        .unwrap();
        let mut wm = WorkingMemory::new();
        for v in [1i64, 2, 4, 8, 16] {
            wm.insert(WmeData::new("coin").with("v", v));
        }
        wm.insert(WmeData::new("purse").with("sum", 0i64));
        let initial = wm.clone();
        let mut e = SingleThreadEngine::new(
            &rules,
            wm,
            EngineConfig {
                strategy: Strategy::Random(seed),
                max_cycles: 100,
            },
        );
        let r = e.run();
        assert_eq!(r.commits, 5, "seed {seed}");
        validate_trace(&rules, &initial, &r.trace).unwrap();
        let purse = e.wm().class_iter("purse").next().unwrap();
        assert_eq!(purse.get("sum").and_then(|v| v.as_i64()), Some(31));
    }
}

/// Theorem 2 (and its §4.3 extension), empirically: the dynamic
/// parallel engine's commit sequence replays single-threadedly for
/// every protocol/policy under random contention.
#[test]
fn parallel_engine_traces_always_validate() {
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tasks = 1 + rng.index(9);
        let tallies = 1 + rng.index(3);
        let workers = 1 + rng.index(4);
        let proto_rc = rng.random_bool(0.5);
        let policy_reval = rng.random_bool(0.5);
        let rules = RuleSet::parse(
            "(p charge (task ^res <r> ^state todo) (tally ^id <r> ^count <c>)
               --> (modify 1 ^state done) (modify 2 ^count (+ <c> 1)))",
        )
        .unwrap();
        let mut wm = WorkingMemory::new();
        for r in 0..tallies {
            wm.insert(WmeData::new("tally").with("id", r as i64).with("count", 0i64));
        }
        for t in 0..tasks {
            wm.insert(
                WmeData::new("task")
                    .with("res", (t % tallies) as i64)
                    .with("state", "todo"),
            );
        }
        let initial = wm.clone();
        let mut e = ParallelEngine::new(
            &rules,
            wm,
            ParallelConfig {
                protocol: if proto_rc {
                    Protocol::RcRaWa
                } else {
                    Protocol::TwoPhase
                },
                policy: if policy_reval {
                    ConflictPolicy::Revalidate
                } else {
                    ConflictPolicy::AbortReaders
                },
                workers,
                ..Default::default()
            },
        );
        let report = e.run();
        assert_eq!(report.commits, tasks, "seed {seed}");
        validate_trace(&rules, &initial, &report.trace).unwrap();
        // The tallies must account for every task exactly once.
        let total: i64 = e
            .final_wm()
            .class_iter("tally")
            .filter_map(|w| w.get("count").and_then(|v| v.as_i64()))
            .sum();
        assert_eq!(total, tasks as i64, "seed {seed}");
    }
}

/// Theorem 1, empirically: static-parallel batches replay
/// single-threadedly for random widths and modes.
#[test]
fn static_engine_traces_always_validate() {
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let jobs = 1 + rng.index(7);
        let stages = 1 + rng.index(4);
        let width = 1 + rng.index(9);
        let dynamic_mode = rng.random_bool(0.5);
        let rules = RuleSet::parse(
            "(p advance (job ^stage <s>) (route ^from <s> ^to <n>)
               --> (modify 1 ^stage <n>))",
        )
        .unwrap();
        let mut wm = WorkingMemory::new();
        for s in 0..stages {
            wm.insert(
                WmeData::new("route")
                    .with("from", s as i64)
                    .with("to", (s + 1) as i64),
            );
        }
        for _ in 0..jobs {
            wm.insert(WmeData::new("job").with("stage", 0i64));
        }
        let initial = wm.clone();
        let mode = if dynamic_mode {
            dbps::engine::SelectionMode::DynamicFootprints
        } else {
            dbps::engine::SelectionMode::StaticRules(
                dbps::rules::analysis::Granularity::ClassAttribute,
            )
        };
        let mut e = StaticParallelEngine::new(
            &rules,
            wm,
            StaticConfig {
                mode,
                max_width: width,
                ..Default::default()
            },
        );
        let report = e.run();
        assert_eq!(report.commits, jobs * stages, "seed {seed}");
        validate_trace(&rules, &initial, &report.trace).unwrap();
    }
}
