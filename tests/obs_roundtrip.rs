//! Seed-loop property tests for the observability JSON pipeline: the
//! hand-rolled writer and parser must be exact inverses on
//!
//! 1. randomized merged histories (`Vec<Event>` → `dps-history-v1` →
//!    parse → `Vec<Event>` equality, both pretty and compact forms);
//! 2. randomized `ObsReport`s driven through a real [`Recorder`]
//!    (`to_json` → text → parse → `Json` tree equality);
//! 3. recorder-produced histories from random but *lifecycle-valid*
//!    transaction schedules (which must also pass `validate_history`
//!    before and after the round trip);
//! 4. randomized `dps-timeline-v1` documents (the live-telemetry
//!    series), which must survive the writer↔parser round trip exactly
//!    and stay `validate`-clean on both sides.
//!
//! Randomness comes from the workspace's internal deterministic PRNG
//! (`dps_wm::rng::SmallRng`); each property runs over a fixed sweep of
//! seeds so failures reproduce exactly by seed.

use std::time::Duration;

use dbps::obs::history::{ANOMALIES, MODES};
use dbps::obs::json::{self, Json};
use dbps::obs::{
    history_from_json, history_to_json, validate_history, AbortCause, Event, EventKind, Phase,
    Recorder, Series, SeriesKind, TimelineDoc,
};
use dbps::wm::rng::SmallRng;

const CASES: u64 = 64;

/// An arbitrary event — any kind, any payload from the closed alphabets.
fn random_event(rng: &mut SmallRng, ts: u64) -> Event {
    let txn = rng.range_u64(0, 12);
    let kind = match rng.index(9) {
        0 => EventKind::Begin,
        1 => EventKind::Grant {
            resource: rng.range_u64(0, 64),
            mode: MODES[rng.index(MODES.len())],
        },
        2 => EventKind::Block {
            resource: rng.range_u64(0, 64),
            mode: MODES[rng.index(MODES.len())],
            holder: if rng.random_bool(0.5) {
                Some(rng.range_u64(0, 12))
            } else {
                None
            },
        },
        3 => EventKind::Doom {
            by: rng.range_u64(0, 12),
        },
        4 => EventKind::Deadlock,
        5 => EventKind::Commit,
        6 => EventKind::Fire {
            rule: rng.range_u64(0, 8) as u32,
            seq: rng.range_u64(0, 100),
        },
        7 => EventKind::Abort {
            cause: AbortCause::ALL[rng.index(AbortCause::ALL.len())],
        },
        _ => EventKind::Anomaly {
            what: ANOMALIES[rng.index(ANOMALIES.len())],
        },
    };
    Event { ts, txn, kind }
}

#[test]
fn random_histories_round_trip_exactly() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.index(40);
        let history: Vec<Event> = (0..n as u64).map(|ts| random_event(&mut rng, ts)).collect();

        // Pretty form.
        let pretty = history_to_json(&history).to_string_pretty();
        let parsed = history_from_json(&json::parse(&pretty).expect("pretty parses"))
            .expect("pretty history decodes");
        assert_eq!(parsed, history, "seed {seed}: pretty round trip");

        // Compact form through the same pipeline.
        let compact = history_to_json(&history).to_string_compact();
        let parsed = history_from_json(&json::parse(&compact).expect("compact parses"))
            .expect("compact history decodes");
        assert_eq!(parsed, history, "seed {seed}: compact round trip");
    }
}

/// Drives a [`Recorder`] with a random but lifecycle-valid schedule:
/// every transaction begins first, accumulates random non-terminal
/// events, and ends with exactly one terminal (`Fire` may trail a
/// commit, as the engine emits it).
fn random_valid_recorder(rng: &mut SmallRng) -> Recorder {
    let rec = Recorder::with_capacity(4, 4096);
    let txns = 1 + rng.index(10) as u64;
    let mut seq = 0u64;
    for txn in 0..txns {
        rec.record(txn, EventKind::Begin);
        for _ in 0..rng.index(4) {
            match rng.index(3) {
                0 => rec.record(
                    txn,
                    EventKind::Grant {
                        resource: rng.range_u64(0, 16),
                        mode: MODES[rng.index(MODES.len())],
                    },
                ),
                1 => rec.record(
                    txn,
                    EventKind::Block {
                        resource: rng.range_u64(0, 16),
                        mode: MODES[rng.index(MODES.len())],
                        holder: txn.checked_sub(1),
                    },
                ),
                _ => rec.record(txn, EventKind::Doom { by: txn.wrapping_add(1) }),
            }
        }
        if rng.random_bool(0.7) {
            rec.record(txn, EventKind::Commit);
            rec.record(
                txn,
                EventKind::Fire {
                    rule: rec.intern_rule(if txn % 2 == 0 { "even" } else { "odd" }),
                    seq,
                },
            );
            seq += 1;
            rec.rule_fired(if txn % 2 == 0 { "even" } else { "odd" });
        } else {
            rec.record(
                txn,
                EventKind::Abort {
                    cause: AbortCause::ALL[rng.index(AbortCause::ALL.len())],
                },
            );
            rec.rule_aborted("odd");
        }
        rec.phase(
            Phase::ALL[rng.index(Phase::ALL.len())],
            Duration::from_nanos(rng.range_u64(0, 1 << 20)),
        );
    }
    // Half the cases also exercise the match fan-out counters, so the
    // report round-trip covers both the empty and populated shapes.
    if rng.random_bool(0.5) {
        rec.set_match_shards(1 + rng.range_u64(0, 8));
        for _ in 0..1 + rng.index(6) {
            rec.fanout_batch(rng.range_u64(0, 4));
            rec.fanout_apply(rng.random_bool(0.3));
        }
    }
    rec
}

#[test]
fn recorder_histories_survive_serialization_and_stay_valid() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let rec = random_valid_recorder(&mut rng);
        let history = rec.history();
        validate_history(&history).unwrap_or_else(|e| panic!("seed {seed}: {e}"));

        let text = history_to_json(&history).to_string_compact();
        let parsed =
            history_from_json(&json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(parsed, history, "seed {seed}");
        // Well-formedness is serialization-invariant.
        validate_history(&parsed).unwrap_or_else(|e| panic!("seed {seed} (reparsed): {e}"));
    }
}

#[test]
fn random_reports_round_trip_as_json_trees() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let rec = random_valid_recorder(&mut rng);
        let doc = rec.report().to_json();

        let pretty = json::parse(&doc.to_string_pretty()).expect("pretty parses");
        assert_eq!(pretty, doc, "seed {seed}: pretty tree");
        let compact = json::parse(&doc.to_string_compact()).expect("compact parses");
        assert_eq!(compact, doc, "seed {seed}: compact tree");
    }
}

#[test]
fn fanout_counters_survive_the_report_round_trip() {
    // Deterministic fan-out traffic: the counters must land in the
    // emitted tree with exact values and survive reparsing.
    let rec = Recorder::with_capacity(2, 256);
    rec.set_match_shards(8);
    rec.fanout_batch(5); // one batch, five free-advanced shards
    rec.fanout_batch(7);
    rec.fanout_apply(false); // committer applies its own shard
    rec.fanout_apply(true); // an idle worker steals a catch-up
    rec.fanout_apply(true);
    let snap = rec.fanout_snapshot();
    assert_eq!(
        (snap.batches, snap.applies, snap.free_advances, snap.steals, snap.shards),
        (2, 3, 12, 2, 8)
    );

    let doc = rec.report().to_json();
    let text = doc.to_string_pretty();
    let reparsed = json::parse(&text).expect("report parses");
    assert_eq!(reparsed, doc);

    let fanout = match &reparsed {
        Json::Obj(fields) => fields
            .iter()
            .find(|(k, _)| k == "fanout")
            .map(|(_, v)| v)
            .expect("report carries a fanout object"),
        other => panic!("report root must be an object, got {other:?}"),
    };
    let get = |key: &str| match fanout {
        Json::Obj(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("fanout field {key} missing")),
        other => panic!("fanout must be an object, got {other:?}"),
    };
    assert_eq!(get("batches"), Json::num(2.0));
    assert_eq!(get("applies"), Json::num(3.0));
    assert_eq!(get("free_advances"), Json::num(12.0));
    assert_eq!(get("steals"), Json::num(2.0));
    assert_eq!(get("shards"), Json::num(8.0));
}

#[test]
fn old_shape_reports_without_fanout_still_parse() {
    // Reports emitted before the sharded match pipeline carry neither a
    // "fanout" object nor a "match_apply" histogram. Consumers parse the
    // generic Json tree, so the old shape must stay readable.
    let old = r#"{
  "schema": "dps-obs-report-v1",
  "commits": 3,
  "aborts": 1,
  "phases": {
    "lock_wait": { "count": 4, "p50_ns": 100, "p95_ns": 200, "p99_ns": 200, "max_ns": 230 }
  },
  "events": [],
  "rules": [ { "rule": "bump", "fired": 3, "aborted": 1 } ]
}"#;
    let doc = json::parse(old).expect("pre-fanout reports must keep parsing");
    let Json::Obj(fields) = &doc else {
        panic!("report root must be an object");
    };
    assert!(fields.iter().all(|(k, _)| k != "fanout"));
    // And the absence is distinguishable from an empty fanout object.
    let rec = Recorder::with_capacity(1, 16);
    let new_doc = rec.report().to_json();
    let Json::Obj(new_fields) = &new_doc else {
        panic!("report root must be an object");
    };
    assert!(new_fields.iter().any(|(k, _)| k == "fanout"));
}

/// A structurally valid random timeline: positive tick, per-series
/// sample counts bounded by the tick count, counter series built as
/// non-decreasing prefix sums, unique dotted names.
fn random_timeline(rng: &mut SmallRng) -> TimelineDoc {
    let ticks = rng.range_u64(0, 40);
    let n = rng.index(12);
    let series = (0..n)
        .map(|i| {
            let kind = if rng.random_bool(0.5) {
                SeriesKind::Counter
            } else {
                SeriesKind::Gauge
            };
            let len = rng.range_u64(0, ticks) as usize;
            let mut samples: Vec<u64> =
                (0..len).map(|_| rng.range_u64(0, 1 << 32)).collect();
            if kind == SeriesKind::Counter {
                // Prefix-sum into a monotone counter trace.
                let mut acc = 0u64;
                for s in &mut samples {
                    acc += *s >> 16; // keep the sum comfortably in range
                    *s = acc;
                }
            }
            Series {
                name: format!("sub{}.metric{i}", rng.index(4)),
                kind,
                samples,
            }
        })
        .collect();
    TimelineDoc {
        tick_ns: rng.range_u64(1, 1 << 40),
        ticks,
        dropped: rng.range_u64(0, 1 << 20),
        series,
    }
}

#[test]
fn random_timelines_round_trip_exactly_and_stay_valid() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let doc = random_timeline(&mut rng);
        doc.validate().unwrap_or_else(|e| panic!("seed {seed}: generator broke: {e}"));

        // Pretty form.
        let pretty = doc.to_json().to_string_pretty();
        let parsed = TimelineDoc::from_json(&json::parse(&pretty).expect("pretty parses"))
            .expect("pretty timeline decodes");
        assert_eq!(parsed, doc, "seed {seed}: pretty round trip");

        // Compact form, and validity is serialization-invariant.
        let compact = doc.to_json().to_string_compact();
        let parsed = TimelineDoc::from_json(&json::parse(&compact).expect("compact parses"))
            .expect("compact timeline decodes");
        assert_eq!(parsed, doc, "seed {seed}: compact round trip");
        parsed
            .validate()
            .unwrap_or_else(|e| panic!("seed {seed} (reparsed): {e}"));
    }
}

#[test]
fn timeline_parser_rejects_what_the_writer_never_emits() {
    // Falsifiability for the shape checks: a parser that accepts
    // anything would make the round-trip property vacuous.
    let bad_schema = r#"{ "schema": "dps-timeline-v2", "tick_ns": 1, "ticks": 0, "dropped": 0, "series": [] }"#;
    assert!(TimelineDoc::from_json(&json::parse(bad_schema).unwrap()).is_err());
    let bad_kind = r#"{ "schema": "dps-timeline-v1", "tick_ns": 1, "ticks": 1, "dropped": 0,
        "series": [ { "name": "x", "kind": "derivative", "samples": [1] } ] }"#;
    assert!(TimelineDoc::from_json(&json::parse(bad_kind).unwrap()).is_err());
    // And validate() catches a decreasing counter that parsed fine.
    let decreasing = r#"{ "schema": "dps-timeline-v1", "tick_ns": 1, "ticks": 2, "dropped": 0,
        "series": [ { "name": "x", "kind": "counter", "samples": [5, 3] } ] }"#;
    let doc = TimelineDoc::from_json(&json::parse(decreasing).unwrap()).expect("shape is fine");
    assert!(doc.validate().is_err(), "decreasing counter must not validate");
}

#[test]
fn old_shape_reports_without_timeline_still_parse() {
    // Bench reports written before the live-telemetry layer carry no
    // "timeline" key; consumers (and obs_check) must treat the absence
    // — and an explicit null, as emitted for sampler-less legs — as
    // "nothing to check", not an error.
    let old = r#"{
  "schema": "dps-scaling-report-v1",
  "config": { "tasks": 8 },
  "sweeps": { "partitioned": [] }
}"#;
    let doc = json::parse(old).expect("pre-telemetry reports must keep parsing");
    assert!(doc.get("timeline").is_none());
    let nulled = r#"{ "schema": "dps-chaos-report-v1", "timeline": null }"#;
    let doc = json::parse(nulled).expect("null timeline parses");
    assert_eq!(doc.get("timeline"), Some(&Json::Null));
}

#[test]
fn scaling_style_nested_documents_round_trip() {
    // A nested object mixing every Json shape the report writers emit
    // (negative and fractional numbers, escapes, empty containers).
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str("dps-test-v1")),
            (
                "values".into(),
                Json::Arr(
                    (0..rng.index(8))
                        .map(|_| Json::num(rng.range_i64(-1000, 1000) as f64 / 8.0))
                        .collect(),
                ),
            ),
            (
                "nested".into(),
                Json::Obj(vec![
                    ("quoted".into(), Json::str("a \"b\" \\ c\n\t")),
                    ("none".into(), Json::Null),
                    ("flag".into(), Json::Bool(rng.random_bool(0.5))),
                    ("empty_arr".into(), Json::Arr(vec![])),
                    ("empty_obj".into(), Json::Obj(vec![])),
                ]),
            ),
        ]);
        let pretty = json::parse(&doc.to_string_pretty()).expect("pretty parses");
        assert_eq!(pretty, doc, "seed {seed}");
        let compact = json::parse(&doc.to_string_compact()).expect("compact parses");
        assert_eq!(compact, doc, "seed {seed}");
    }
}
