//! Integration tests for the chaos layer: seeded fault plans must
//! never cost consistency (the robustness version of Theorem 2), the
//! checker must be falsifiable, and a transaction doomed mid-RHS must
//! stop before its next action and release its locks exactly once.

use dbps::engine::semantics::validate_trace;
use dbps::engine::{ParallelConfig, ParallelEngine, WorkModel};
use dbps::lock::{
    ConflictPolicy, FaultPlan, LockError, LockManager, LockMode, Protocol, ResourceId,
};
use dbps::obs::Verdict;
use dps_bench::chaos::{chaos_run, sweep_governor, ChaosSpec};
use dps_bench::workloads;

/// S2 seed-loop property: every named fault plan, across seeds and
/// both conflict policies, yields a run that drains its workload and
/// replays consistently through the §3 oracle — the injector may cost
/// throughput, never correctness.
#[test]
fn every_fault_plan_and_seed_replays_consistently() {
    for (plan_name, ctor) in FaultPlan::NAMED {
        for policy in [ConflictPolicy::AbortReaders, ConflictPolicy::Revalidate] {
            for seed in [0xC0FF_EE01_u64, 0x5EED_0002] {
                let run = chaos_run(ChaosSpec {
                    plan: plan_name,
                    fault: ctor(seed),
                    policy,
                    workers: 4,
                    tasks: 12,
                    resources: 2,
                    work_us: 50,
                    busy: false,
                    governor: Some(sweep_governor(seed)),
                    telemetry: false,
                });
                assert!(
                    run.passes(),
                    "plan {plan_name} / {policy:?} / seed {seed:#x}: \
                     drained={} verdict={:?} errors={:?}",
                    run.drained,
                    run.verdict,
                    run.structural_errors
                );
                assert_eq!(
                    run.injected_aborts, run.faults.forced_aborts,
                    "every injected fault must surface as an Injected abort, \
                     never masquerade as an organic cause"
                );
            }
        }
    }
}

/// S2 falsifiability: corrupting the recorded commit ordering (low-bit
/// flip on the last fire seq, odd commit count so contiguity is
/// guaranteed to break) must be *rejected* by the checker. If this
/// test fails the oracle is a rubber stamp and the property test above
/// proves nothing.
#[test]
fn corrupted_commit_sequence_is_rejected() {
    let seed = 0xBAD_5EED;
    let run = chaos_run(ChaosSpec {
        plan: "corrupted",
        fault: FaultPlan {
            corrupt_fire_seq: true,
            ..FaultPlan::quiet(seed)
        },
        policy: ConflictPolicy::AbortReaders,
        workers: 4,
        tasks: 13, // odd: seq ^ 1 always breaks 0..n contiguity
        resources: 2,
        work_us: 0,
        busy: false,
        governor: None,
        telemetry: false,
    });
    assert_eq!(run.verdict, Verdict::Inconsistent);
    assert!(
        !run.structural_errors.is_empty(),
        "rejection must come with a concrete structural error"
    );
    assert!(!run.passes());
}

/// S3, lock level: a reader doomed by a committing writer surfaces
/// `DoomedByWriter` from `check`, its abort releases the locks exactly
/// once (a second abort/check is `NotActive`), and the released
/// resource is immediately grantable to a newcomer.
#[test]
fn doomed_reader_releases_locks_exactly_once() {
    let lm = LockManager::new(ConflictPolicy::AbortReaders);
    let res = ResourceId::Tuple(7);
    let reader = lm.begin();
    let writer = lm.begin();
    lm.lock(reader, res, LockMode::Rc).unwrap();
    lm.lock(writer, res, LockMode::Wa).unwrap();

    // Commit-time dooming (Figure 4.3(b)).
    let outcome = lm.commit(writer).unwrap();
    assert_eq!(outcome.doomed_readers, vec![reader]);

    // The doomed-poll seam the engine uses mid-RHS. Surfacing the doom
    // IS the abort: the `Doomed → Aborted` flip and the lock release
    // happen in one critical section, exactly once.
    match lm.check(reader) {
        Err(LockError::DoomedByWriter { txn, by }) => {
            assert_eq!((txn, by), (reader, writer));
        }
        other => panic!("expected DoomedByWriter, got {other:?}"),
    }

    // A second poll is a benign no-op (the held set was already
    // drained), and an explicit abort cannot release again: the
    // accounting ran exactly once.
    assert!(lm.check(reader).is_ok());
    assert!(!lm.is_active(reader));
    assert!(matches!(lm.abort(reader), Err(LockError::NotActive(_))));

    // The lock really was released (once): an X grant succeeds now.
    let late = lm.begin();
    assert_eq!(lm.try_lock(late, res, LockMode::X), Ok(true));
}

/// S3, engine level: under a doom-storm plan with a non-trivial RHS,
/// workers are doomed *mid-RHS* (the stall seam widens the window) and
/// the doomed poll stops them before the action phase — so the final
/// trace still replays consistently and every task still drains.
#[test]
fn doomed_mid_rhs_stops_before_next_action() {
    let seed = 0xD00F_u64;
    let (rules, wm) = workloads::shared_resources(16, 1);
    let initial = wm.clone();
    let mut engine = ParallelEngine::new(
        &rules,
        wm,
        ParallelConfig {
            protocol: Protocol::RcRaWa,
            policy: ConflictPolicy::AbortReaders,
            workers: 4,
            work: WorkModel::FixedMicros(200),
            fault: Some(FaultPlan::doom_storm(seed)),
            ..Default::default()
        },
    );
    let report = engine.run();
    assert_eq!(report.commits, 16, "every task drains despite the storm");
    let aborts = report.aborts;
    assert!(
        aborts.doomed + aborts.revalidation + aborts.injected > 0,
        "the storm must actually doom workers mid-flight: {aborts:?}"
    );
    let stats = report.fault_stats.expect("fault plan attaches stats");
    assert!(stats.rhs_stalls > 0, "mid-RHS stall seam must fire");
    // The §3 oracle: had any doomed worker slipped its action through,
    // replay would observe the phantom write and reject.
    validate_trace(&rules, &initial, &report.trace)
        .expect("doomed workers must stop before their next action");
}
