//! Observability + abort-accounting regression tests.
//!
//! Three invariants this file pins down (each was violated, or
//! unverifiable, before the `dps-obs` layer landed):
//!
//! 1. an RHS evaluation error increments **only** the `eval_error`
//!    counter (it used to be folded into `stale`);
//! 2. the engine's per-cause abort counters sum to the lock manager's
//!    abort total — the two layers' books balance;
//! 3. the merged observability history is well-formed: every transaction
//!    begins before anything else, ends with exactly one terminal
//!    (commit xor abort), and its timestamps are monotone.

use dbps::engine::{ParallelConfig, ParallelEngine, WorkModel};
use dbps::lock::ConflictPolicy;
use dbps::obs::validate_history;
use dbps::rules::RuleSet;
use dbps::wm::{WmeData, WorkingMemory};

/// A workload whose every RHS fails to evaluate (division by zero).
fn eval_error_workload() -> (RuleSet, WorkingMemory) {
    let rules =
        RuleSet::parse("(p boom (cell ^n <n>) --> (modify 1 ^n (/ <n> 0)))").unwrap();
    let mut wm = WorkingMemory::new();
    wm.insert(WmeData::new("cell").with("n", 1i64));
    (rules, wm)
}

/// Heavy Rc–Wa conflict: many deltas folded into one shared accumulator
/// with simulated RHS work, so dooms actually occur.
fn contended_workload(deltas: i64) -> (RuleSet, WorkingMemory) {
    let rules = RuleSet::parse(
        "(p apply (delta ^v <d>) (acc ^total <t>)
           --> (remove 1) (modify 2 ^total (+ <t> <d>)))",
    )
    .unwrap();
    let mut wm = WorkingMemory::new();
    for i in 1..=deltas {
        wm.insert(WmeData::new("delta").with("v", i));
    }
    wm.insert(WmeData::new("acc").with("total", 0i64));
    (rules, wm)
}

#[test]
fn eval_error_increments_only_its_own_counter() {
    let (rules, wm) = eval_error_workload();
    let mut engine = ParallelEngine::new(
        &rules,
        wm,
        ParallelConfig {
            workers: 2,
            observe: true,
            ..Default::default()
        },
    );
    let report = engine.run();
    assert_eq!(report.commits, 0, "the only rule can never commit");
    assert_eq!(report.aborts.eval_error, 1, "one refracted eval failure");
    assert_eq!(report.aborts.stale, 0, "eval errors no longer masquerade as stale");
    assert_eq!(report.aborts.doomed, 0);
    assert_eq!(report.aborts.deadlock, 0);
    assert_eq!(report.aborts.revalidation, 0);
    assert_eq!(report.aborts.timeout, 0);
    assert_eq!(report.aborts.total(), 1);
    // The observability stream agrees, down to the per-rule table.
    let rec = engine.observer().expect("observe: true");
    let obs = rec.report();
    assert_eq!(
        obs.abort_causes
            .iter()
            .find(|(c, _)| c.name() == "eval_error")
            .map(|(_, n)| *n),
        Some(1)
    );
    assert_eq!(obs.aborts, 1);
    let rule = obs.rules.iter().find(|r| r.name == "boom").expect("rule row");
    assert_eq!((rule.fired, rule.aborted), (0, 1));
}

#[test]
fn engine_and_lock_manager_abort_books_balance() {
    // Aggregate over several contended runs (conflict is scheduling-
    // dependent) under both commit-time policies.
    for policy in [ConflictPolicy::AbortReaders, ConflictPolicy::Revalidate] {
        for _ in 0..3 {
            let (rules, wm) = contended_workload(8);
            let mut engine = ParallelEngine::new(
                &rules,
                wm,
                ParallelConfig {
                    policy,
                    workers: 4,
                    work: WorkModel::FixedMicros(200),
                    observe: true,
                    ..Default::default()
                },
            );
            let report = engine.run();
            assert_eq!(report.commits, 8, "{policy:?}");
            assert_eq!(
                report.aborts.total(),
                report.lock_stats.aborts,
                "{policy:?}: engine abort causes {:?} must sum to the lock manager's {}",
                report.aborts,
                report.lock_stats.aborts
            );
            // The obs event stream is the third, independent book.
            let obs = engine.observer().expect("observe: true").report();
            assert_eq!(obs.abort_cause_total(), report.aborts.total(), "{policy:?}");
            assert_eq!(obs.aborts, report.aborts.total(), "{policy:?}");
            assert_eq!(obs.commits, report.commits as u64, "{policy:?}");
            assert_eq!(obs.anomalies, 0, "{policy:?}");
        }
    }
}

#[test]
fn merged_history_is_well_formed() {
    let (rules, wm) = contended_workload(10);
    let mut engine = ParallelEngine::new(
        &rules,
        wm,
        ParallelConfig {
            workers: 4,
            work: WorkModel::FixedMicros(200),
            observe: true,
            ..Default::default()
        },
    );
    let report = engine.run();
    assert_eq!(report.commits, 10);
    let rec = engine.observer().expect("observe: true");
    assert_eq!(rec.dropped(), 0, "ring capacity suffices for this run");
    let history = rec.history();
    assert!(!history.is_empty());
    validate_history(&history).expect("begin-first, one terminal, monotone timestamps");
    // Terminals match the engine's own accounting.
    let commits = history
        .iter()
        .filter(|e| matches!(e.kind, dbps::obs::EventKind::Commit))
        .count();
    let aborts = history
        .iter()
        .filter(|e| matches!(e.kind, dbps::obs::EventKind::Abort { .. }))
        .count();
    assert_eq!(commits, report.commits);
    assert_eq!(aborts as u64, report.aborts.total());
}

#[test]
fn observe_off_attaches_no_recorder() {
    let (rules, wm) = contended_workload(4);
    let mut engine = ParallelEngine::new(&rules, wm, ParallelConfig::default());
    let report = engine.run();
    assert_eq!(report.commits, 4);
    assert!(engine.observer().is_none(), "observe defaults to off");
}

#[test]
fn lock_timeout_config_reaches_the_lock_manager() {
    use std::time::Duration;
    // A 1-worker run with a generous timeout must behave identically to
    // no timeout (nothing ever waits), proving the plumb-through without
    // relying on timing.
    let (rules, wm) = contended_workload(4);
    let mut engine = ParallelEngine::new(
        &rules,
        wm,
        ParallelConfig {
            workers: 1,
            lock_timeout: Some(Duration::from_secs(5)),
            observe: true,
            ..Default::default()
        },
    );
    let report = engine.run();
    assert_eq!(report.commits, 4);
    assert_eq!(report.aborts.total(), 0);
    assert_eq!(report.aborts.timeout, 0);
}
