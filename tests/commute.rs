//! Coordination avoidance, end to end: lock-elided batch commit must be
//! an *unobservable* optimisation.
//!
//! The matrix test drives the commute-stream workload (self-commuting
//! counter decrements plus make-only event emitters — every component
//! proves commutative) across three seeded workload shapes × match-shard
//! counts {1, 2, 8} × elision {off, on}, under a seeded doom-storm fault
//! plan so schedules actually differ. Every run must drain, replay
//! through the §3 Theorem-2 oracle, and converge to the *same* final
//! working memory; the elided runs must additionally acquire **zero**
//! locks — no grants, no blocks, every skip booked in
//! `LockStats::elided` — on the resources the analysis proved out.
//!
//! The falsifiability half re-runs both gate probes from
//! [`dps_bench::commute`] in-tree: a deliberately misclassified
//! non-commutative pair (judgment forced, validation bypassed) must be
//! *rejected* by the oracle, and swapping two firings in a recorded
//! trace must be rejected for the non-commutative pair but accepted for
//! genuinely disjoint commutative firings.

use std::collections::BTreeMap;

use dbps::engine::semantics::validate_trace;
use dbps::engine::{ParallelConfig, ParallelEngine, WorkModel};
use dbps::lock::{FaultPlan, Protocol};
use dbps::obs::validate_history;
use dbps::wm::WorkingMemory;
use dps_bench::commute::{probe_misclassification, probe_swapped_order};
use dps_bench::workloads;

/// Class → multiset of (attr, value) rows, ignoring ids and timestamps:
/// the order-independent fingerprint of a working memory.
fn fingerprint(wm: &WorkingMemory) -> BTreeMap<String, Vec<String>> {
    let mut out: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for w in wm.iter() {
        let row: Vec<String> = w
            .data
            .attrs
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        out.entry(w.class().to_string())
            .or_default()
            .push(row.join(","));
    }
    for rows in out.values_mut() {
        rows.sort();
    }
    out
}

#[test]
fn elision_is_unobservable_across_seeds_and_shards() {
    for seed in [7u64, 42, 0xC0DE] {
        // The workload itself is deterministic, so the seed varies both
        // its shape and the doom-storm schedule perturbation.
        let counters = 3 + (seed % 3) as usize;
        let makers = 2 + (seed % 2) as usize;
        let (c_steps, m_steps) = (4i64, 3i64);
        let expected = counters * c_steps as usize + makers * m_steps as usize;
        let (rules, wm) = workloads::commute_stream(counters, c_steps, makers, m_steps);
        let mut fingerprints = Vec::new();
        for shards in [1usize, 2, 8] {
            for elide in [false, true] {
                let label = format!(
                    "seed {seed:#x} / {shards} shards / elide {}",
                    if elide { "on" } else { "off" }
                );
                let mut engine = ParallelEngine::new(
                    &rules,
                    wm.clone(),
                    ParallelConfig {
                        protocol: Protocol::RcRaWa,
                        workers: 4,
                        match_shards: shards,
                        work: WorkModel::FixedMicros(50),
                        fault: Some(FaultPlan::doom_storm(seed)),
                        observe: true,
                        elide_locks: elide,
                        ..Default::default()
                    },
                );
                let report = engine.run();
                assert_eq!(report.commits, expected, "{label}: lost commits");
                validate_trace(&rules, &wm, &report.trace)
                    .unwrap_or_else(|v| panic!("{label}: §3 replay rejected: {v}"));
                let rec = engine.observer().expect("observe: true");
                validate_history(&rec.history())
                    .unwrap_or_else(|e| panic!("{label}: malformed history: {e}"));
                if elide {
                    // Every component of commute_stream proves
                    // commutative, so the run must never touch the lock
                    // manager's grant path: zero acquisitions, zero
                    // blocks, all traffic booked as skips.
                    assert_eq!(report.lock_stats.grants, 0, "{label}: lock acquired");
                    assert_eq!(report.lock_stats.blocks, 0, "{label}: lock blocked");
                    assert!(report.lock_stats.elided > 0, "{label}: skips unbooked");
                } else {
                    assert_eq!(report.lock_stats.elided, 0, "{label}: skip without elision");
                    assert!(report.lock_stats.grants > 0, "{label}: §4 protocol idle");
                }
                fingerprints.push((label, fingerprint(&engine.final_wm())));
            }
        }
        for pair in fingerprints.windows(2) {
            assert_eq!(
                pair[0].1, pair[1].1,
                "final states diverge between {} and {}",
                pair[0].0, pair[1].0
            );
        }
    }
}

#[test]
fn misclassified_commutativity_is_rejected_by_the_oracle() {
    // Force the judgment to call a non-commutative pair commutative AND
    // bypass commit-time validation: the manufactured lost updates must
    // be caught by the §3 replay. If this probe ever *passes* the
    // oracle, either the oracle or the elision protocol has a hole.
    assert!(
        probe_misclassification(8, 200),
        "oracle accepted a deliberately misclassified elided run"
    );
}

#[test]
fn swapped_firing_order_distinguishes_commutative_pairs() {
    // Trace-level check that the commutativity judgment tracks real
    // reorderability: swapping two adjacent firings of the
    // non-commutative pair must break replay, while swapping two
    // disjoint counter decrements must not.
    let (noncommutative_rejected, commutative_accepted) = probe_swapped_order();
    assert!(
        noncommutative_rejected,
        "oracle accepted a swapped non-commutative pair"
    );
    assert!(
        commutative_accepted,
        "oracle rejected a swapped pair the judgment proves commutative"
    );
}
