//! Crash-point property test for the durability layer: cut the WAL at
//! **every byte boundary** and recover.
//!
//! A real crash does not respect record framing — the kernel may have
//! written any prefix of the log when the power goes. So the property
//! the recovery path must hold is quantified over *arbitrary*
//! truncation points, not just the frame boundaries the kill-point
//! harness exercises:
//!
//! for every prefix length `k` of the segment file, `recover` either
//!
//! * succeeds with some durable horizon `w` and a working memory
//!   **byte-identical** (via `encode_snapshot`) to a single-thread
//!   replay of the run's first `w` trace firings — a truncated trace
//!   that itself passes the §3 oracle ([`validate_trace`]) — or
//! * fails cleanly with a recovery error (a cut inside the segment
//!   header, for instance, leaves nothing to trust);
//!
//! and it **never** panics and never produces a half-applied batch
//! (half-applied states cannot be byte-identical to any whole-commit
//! prefix). Recovered horizons must also be monotone in `k`: more
//! surviving bytes can only ever expose more whole records.
//!
//! Two scenarios: a single-segment log (no checkpoints — redo carries
//! everything) and a checkpointed log (recovery seeds from the
//! snapshot and replays the suffix; the cut sweeps the *live* tail
//! segment).

use std::fs;
use std::path::{Path, PathBuf};

use dps_bench::workloads;
use dps_core::semantics::validate_trace;
use dps_core::{DurabilityConfig, ParallelConfig, ParallelEngine, Trace};
use dps_rules::RuleSet;
use dps_wm::{recover, WorkingMemory};

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dps-crashcut-{tag}-{}", std::process::id()))
}

/// Serially replays the first `w` firings from `initial`, after
/// checking the truncated trace against the §3 oracle.
fn serial_prefix(rules: &RuleSet, initial: &WorkingMemory, trace: &Trace, w: usize) -> Vec<u8> {
    let prefix = Trace { firings: trace.firings[..w].to_vec() };
    validate_trace(rules, initial, &prefix)
        .unwrap_or_else(|v| panic!("durable prefix of {w} firings fails the oracle: {v}"));
    let mut wm = initial.clone();
    for firing in &prefix.firings {
        wm.apply(&firing.delta).expect("prefix replay applies");
    }
    wm.encode_snapshot().expect("prefix snapshot encodes")
}

/// The sorted `.log` segment paths of a durability dir.
fn segments(dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .expect("durability dir lists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "log"))
        .collect();
    segs.sort();
    segs
}

/// Runs the counters workload durably, then sweeps every byte-boundary
/// cut of the final (live) segment, checking the recovery property at
/// each length.
fn sweep_every_byte_cut(tag: &str, checkpoint_interval: u64) {
    let dir = scratch(tag);
    let _ = fs::remove_dir_all(&dir);

    let (rules, wm) = workloads::counters(4, 3);
    let expected = 12u64;
    let initial = wm.clone();
    let mut engine = ParallelEngine::new(
        &rules,
        wm,
        ParallelConfig {
            workers: 4,
            durability: Some(DurabilityConfig { dir: dir.clone(), checkpoint_interval }),
            ..Default::default()
        },
    );
    let report = engine.run();
    assert_eq!(report.commits as u64, expected);
    let trace = report.trace.clone();

    // Precompute the serial-replay snapshot for every possible horizon
    // (recovery at a cut may land on any of them).
    let by_horizon: Vec<Vec<u8>> =
        (0..=expected as usize).map(|w| serial_prefix(&rules, &initial, &trace, w)).collect();

    let segs = segments(&dir);
    let tail = segs.last().expect("at least one segment").clone();
    let tail_bytes = fs::read(&tail).expect("tail segment reads");

    let cut_dir = scratch(&format!("{tag}-cut"));
    let mut horizons = Vec::new();
    let mut clean_failures = 0usize;
    let mut last_horizon = 0u64;
    for k in 0..=tail_bytes.len() {
        let _ = fs::remove_dir_all(&cut_dir);
        fs::create_dir_all(&cut_dir).expect("cut dir creates");
        for entry in fs::read_dir(&dir).expect("durability dir lists") {
            let p = entry.expect("dir entry").path();
            let name = p.file_name().expect("file name");
            fs::copy(&p, cut_dir.join(name)).expect("durability file copies");
        }
        fs::write(cut_dir.join(tail.file_name().expect("file name")), &tail_bytes[..k])
            .expect("cut tail writes");

        // The property: Ok(exact prefix) or a clean Err — never a
        // panic, never a half-applied state.
        match recover(&cut_dir) {
            Ok(rec) => {
                assert!(
                    rec.last_seq <= expected,
                    "cut at byte {k}: horizon {} past the run's {expected} commits",
                    rec.last_seq
                );
                assert!(
                    rec.last_seq >= last_horizon,
                    "cut at byte {k}: horizon {} below byte {}'s {last_horizon} — \
                     more bytes exposed fewer records",
                    rec.last_seq,
                    k.saturating_sub(1),
                );
                last_horizon = rec.last_seq;
                let got = rec.wm.encode_snapshot().expect("recovered snapshot encodes");
                assert_eq!(
                    got, by_horizon[rec.last_seq as usize],
                    "cut at byte {k}: recovered state diverges from the serial replay \
                     of its own horizon ({})",
                    rec.last_seq
                );
                horizons.push(rec.last_seq);
            }
            Err(_) => clean_failures += 1,
        }
    }

    // Not vacuous: the uncut log must recover the whole run, and the
    // sweep must actually have visited distinct horizons.
    assert_eq!(horizons.last().copied(), Some(expected), "uncut log recovers everything");
    let distinct = {
        let mut h = horizons.clone();
        h.sort_unstable();
        h.dedup();
        h.len()
    };
    assert!(
        distinct > 2,
        "only {distinct} distinct horizons over {} cuts — the sweep is not cutting \
         through records ({clean_failures} clean failures)",
        tail_bytes.len() + 1
    );

    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&cut_dir);
}

#[test]
fn every_byte_cut_recovers_a_whole_prefix_or_fails_cleanly() {
    sweep_every_byte_cut("flat", 0);
}

#[test]
fn every_byte_cut_of_a_checkpointed_log_recovers_from_the_snapshot() {
    // 12 commits at interval 5: checkpoints at 5 and 10, so the live
    // tail segment holds records 11–12 (an interval dividing the run
    // length would leave the tail empty and the sweep vacuous).
    sweep_every_byte_cut("ckpt", 5);
}
