//! Live-telemetry cross-validation: tick-integrated totals must
//! reconcile with the end-of-run aggregates.
//!
//! The probe design makes this a strong invariant, not an approximate
//! one: every telemetry probe reads *the same atomic cells* the
//! [`dbps::engine::ParallelReport`] reads, and `Telemetry::stop` takes
//! one forced final sample after the workers drain — so the last sample
//! of every counter series must equal the report's number **exactly**.
//! Anything else means a probe is wired to the wrong cell, a series
//! name drifted, or the sampler outlived the run.

use dbps::engine::{GovernorConfig, ParallelConfig, ParallelEngine, WorkModel};
use dbps::lock::{ConflictPolicy, FaultPlan};
use dbps::obs::{SeriesKind, TelemetryConfig, TimelineDoc};
use dbps::rules::RuleSet;
use dbps::wm::{WmeData, WorkingMemory};
use std::time::Duration;

/// Heavy Rc–Wa conflict: many deltas folded into one shared accumulator
/// with simulated RHS work, so dooms (and lock waits) actually occur.
fn contended_workload(deltas: i64) -> (RuleSet, WorkingMemory) {
    let rules = RuleSet::parse(
        "(p apply (delta ^v <d>) (acc ^total <t>)
           --> (remove 1) (modify 2 ^total (+ <t> <d>)))",
    )
    .unwrap();
    let mut wm = WorkingMemory::new();
    for i in 1..=deltas {
        wm.insert(WmeData::new("delta").with("v", i));
    }
    wm.insert(WmeData::new("acc").with("total", 0i64));
    (rules, wm)
}

fn telemetry_cfg() -> Option<TelemetryConfig> {
    Some(TelemetryConfig {
        tick: Duration::from_millis(2),
        capacity: 8192,
    })
}

#[test]
fn counter_series_reconcile_with_the_report() {
    let (rules, wm) = contended_workload(48);
    let mut engine = ParallelEngine::new(
        &rules,
        wm,
        ParallelConfig {
            workers: 4,
            work: WorkModel::FixedMicros(150),
            observe: true,
            telemetry: telemetry_cfg(),
            ..Default::default()
        },
    );
    let report = engine.run();
    let doc = engine.telemetry().unwrap().doc();
    doc.validate().unwrap();
    assert!(doc.ticks >= 1, "the sampler ticked at least once (final sample)");

    // Engine counters: the last sample IS the report number.
    assert_eq!(doc.last("engine.commits"), Some(report.commits as u64));
    let by_cause = [
        ("engine.aborts.doomed", report.aborts.doomed),
        ("engine.aborts.deadlock", report.aborts.deadlock),
        ("engine.aborts.stale", report.aborts.stale),
        ("engine.aborts.revalidation", report.aborts.revalidation),
        ("engine.aborts.eval_error", report.aborts.eval_error),
        ("engine.aborts.timeout", report.aborts.timeout),
        ("engine.aborts.injected", report.aborts.injected),
        ("engine.aborts.snapshot_stale", report.aborts.snapshot_stale),
    ];
    for (name, total) in by_cause {
        assert_eq!(doc.last(name), Some(total), "series {name}");
    }
    assert_eq!(
        doc.last("engine.wasted_ns"),
        Some(report.wasted_work.as_nanos() as u64)
    );

    // Lock-manager counters reconcile with LockStats.
    assert_eq!(doc.last("lock.grants"), Some(report.lock_stats.grants));
    assert_eq!(doc.last("lock.blocks"), Some(report.lock_stats.blocks));
    assert_eq!(doc.last("lock.dooms"), Some(report.lock_stats.dooms));
    assert_eq!(doc.last("lock.deadlocks"), Some(report.lock_stats.deadlocks));

    // Pipeline fan-out counters reconcile with FanoutStats.
    assert_eq!(doc.last("pipeline.batches"), Some(report.fanout.batches));
    assert_eq!(doc.last("pipeline.applies"), Some(report.fanout.applies));
    assert_eq!(
        doc.last("pipeline.free_advances"),
        Some(report.fanout.free_advances)
    );
    assert_eq!(doc.last("pipeline.steals"), Some(report.fanout.steals));

    // And the event-ring side agrees too: the recorder's report counts
    // the same commits/aborts the timeline integrated.
    let obs = engine.observer().unwrap().report();
    assert_eq!(doc.last("engine.commits"), Some(obs.commits));
    assert_eq!(
        doc.last("engine.aborts.doomed").unwrap()
            + doc.last("engine.aborts.deadlock").unwrap()
            + doc.last("engine.aborts.stale").unwrap()
            + doc.last("engine.aborts.revalidation").unwrap()
            + doc.last("engine.aborts.eval_error").unwrap()
            + doc.last("engine.aborts.timeout").unwrap()
            + doc.last("engine.aborts.injected").unwrap()
            + doc.last("engine.aborts.snapshot_stale").unwrap(),
        obs.aborts,
        "tick-integrated abort total == event-ring abort total"
    );
}

#[test]
fn counter_series_are_monotone_and_kinds_are_stable() {
    let (rules, wm) = contended_workload(32);
    let mut engine = ParallelEngine::new(
        &rules,
        wm,
        ParallelConfig {
            workers: 4,
            work: WorkModel::FixedMicros(200),
            telemetry: telemetry_cfg(),
            ..Default::default()
        },
    );
    engine.run();
    let doc = engine.telemetry().unwrap().doc();
    // validate() already rejects decreasing counters; assert the kind
    // map so a future rename/rekind breaks loudly here.
    doc.validate().unwrap();
    for name in ["engine.commits", "lock.grants", "pipeline.batches"] {
        assert_eq!(doc.series(name).unwrap().kind, SeriesKind::Counter, "{name}");
    }
    for name in ["pipeline.log_depth", "pipeline.cursor_lag", "lock.wait.p99_ns"] {
        assert_eq!(doc.series(name).unwrap().kind, SeriesKind::Gauge, "{name}");
    }
}

#[test]
fn governor_and_wal_series_appear_and_reconcile() {
    let dir = std::env::temp_dir().join(format!("dps-tel-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (rules, wm) = contended_workload(40);
    let mut engine = ParallelEngine::new(
        &rules,
        wm,
        ParallelConfig {
            policy: ConflictPolicy::AbortReaders,
            workers: 4,
            work: WorkModel::BusyMicros(300),
            fault: Some(FaultPlan::doom_storm(7)),
            governor: Some(GovernorConfig {
                backoff_base_us: 10,
                backoff_cap_us: 100,
                storm_window: 8,
                storm_threshold_pm: 300,
                escalate_after: 2,
                starvation_bound: 2,
                cooldown_commits: 64,
                seed: 7,
            }),
            durability: Some(dbps::engine::DurabilityConfig::at(&dir)),
            telemetry: telemetry_cfg(),
            ..Default::default()
        },
    );
    let report = engine.run();
    let doc = engine.telemetry().unwrap().doc();
    doc.validate().unwrap();

    let gov = report.governor.expect("governor attached");
    assert_eq!(doc.last("governor.escalations"), Some(gov.escalations));
    assert_eq!(doc.last("governor.serializations"), Some(gov.serializations));
    assert_eq!(doc.last("governor.deescalations"), Some(gov.deescalations));
    assert_eq!(doc.last("governor.backoffs"), Some(gov.backoffs));
    assert_eq!(
        doc.last("governor.escalated_now"),
        Some(gov.escalated_now as u64),
        "the mirror equals the mutexed set's size"
    );
    assert_eq!(
        doc.last("governor.serialized_now"),
        Some(gov.serialized_now as u64)
    );

    let wal = report.wal.expect("durability attached");
    assert_eq!(doc.last("wal.appends"), Some(wal.appends));
    assert_eq!(doc.last("wal.fsyncs"), Some(wal.fsyncs));
    assert_eq!(doc.last("wal.piggybacked"), Some(wal.piggybacked));
    // After the quiescence flush nothing can still be pending.
    assert_eq!(doc.last("wal.pending_bytes"), Some(0));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn timeline_doc_roundtrips_through_report_json() {
    let (rules, wm) = contended_workload(16);
    let mut engine = ParallelEngine::new(
        &rules,
        wm,
        ParallelConfig {
            workers: 2,
            telemetry: telemetry_cfg(),
            ..Default::default()
        },
    );
    engine.run();
    let doc = engine.telemetry().unwrap().doc();
    let text = doc.to_json().to_string_pretty();
    let back = TimelineDoc::from_json(&dbps::obs::json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, doc);
}

#[test]
fn telemetry_off_engine_has_no_registry() {
    let (rules, wm) = contended_workload(8);
    let mut engine = ParallelEngine::new(&rules, wm, ParallelConfig::default());
    engine.run();
    assert!(engine.telemetry().is_none(), "off ⇒ one branch on a None");
}
