//! Quickstart: define rules (builder API *and* DSL), load working
//! memory, run the single-thread engine, inspect the trace.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dbps::engine::{EngineConfig, SingleThreadEngine};
use dbps::rete::Strategy;
use dbps::rules::builder::{ce, rule, val, var};
use dbps::rules::RuleSet;
use dbps::wm::{WmeData, WorkingMemory};

fn main() {
    // --- rules: one via the fluent builder, one via the OPS5-ish DSL ---
    let mut rules = RuleSet::new();
    rules
        .add(
            rule("restock")
                .when(
                    ce("item")
                        .bind("name", "n")
                        .lt("stock", 3i64)
                        .bind("stock", "s"),
                )
                .then_modify(1, [("stock", var("s") + val(10))])
                .then_make("order", [("item", var("n"))])
                .build()
                .expect("valid rule"),
        )
        .expect("unique name");
    for parsed in dbps::rules::parser::parse_rules(
        "(p audit (order ^item <i>) -(audited ^item <i>)
            --> (make audited ^item <i>))",
    )
    .expect("parses")
    {
        rules.add(parsed).expect("unique name");
    }

    // --- working memory: a tiny inventory ---
    let mut wm = WorkingMemory::new();
    wm.insert(
        WmeData::new("item")
            .with("name", "bolt")
            .with("stock", 1i64),
    );
    wm.insert(WmeData::new("item").with("name", "nut").with("stock", 7i64));
    wm.insert(
        WmeData::new("item")
            .with("name", "washer")
            .with("stock", 0i64),
    );

    // --- run ---
    let mut engine = SingleThreadEngine::new(
        &rules,
        wm,
        EngineConfig {
            strategy: Strategy::Lex,
            max_cycles: 100,
        },
    );
    let report = engine.run();

    println!(
        "fired {} productions: {:?}",
        report.commits,
        report.trace.names()
    );
    println!("\nfinal working memory:");
    for wme in engine.wm().iter() {
        println!("  {wme}");
    }

    // bolt and washer were below the threshold; nut was fine.
    assert_eq!(engine.wm().class_iter("order").count(), 2);
    assert_eq!(engine.wm().class_iter("audited").count(), 2);
    let nut = engine
        .wm()
        .class_iter("item")
        .find(|w| w.get("name").and_then(|v| v.as_text()) == Some("nut"))
        .expect("nut survives");
    assert_eq!(nut.get("stock").and_then(|v| v.as_i64()), Some(7));
    println!("\nquickstart OK");
}
