//! Knowledge persistence — the paper's opening motivation ("expert
//! system users are asking for knowledge sharing and knowledge
//! persistence, features found currently in databases").
//!
//! Flow: checkpoint working memory, run the production system while
//! shipping every committed change batch to a redo log, "crash", then
//! recover from snapshot + log and verify the state is identical.
//!
//! ```text
//! cargo run --example persistence
//! ```

use dbps::engine::{EngineConfig, SingleThreadEngine};
use dbps::rules::RuleSet;
use dbps::wm::{RedoLog, Wme, WmeData, WorkingMemory};

fn main() {
    let rules = RuleSet::parse(
        "(p process (order ^state new ^qty <q>)
            --> (modify 1 ^state done) (make shipment ^qty <q>))",
    )
    .expect("parses");
    let mut wm = WorkingMemory::new();
    for q in [5i64, 10, 15] {
        wm.insert(WmeData::new("order").with("state", "new").with("qty", q));
    }

    // --- checkpoint ---
    let snapshot = wm.encode_snapshot().expect("snapshot encodes");
    println!(
        "checkpoint: {} bytes for {} tuples",
        snapshot.len(),
        wm.len()
    );

    // --- run, shipping each commit's change batch to the redo log ---
    let mut engine = SingleThreadEngine::new(&rules, wm.clone(), EngineConfig::default());
    let report = engine.run();
    let mut log = RedoLog::new();
    let mut shipper = WorkingMemory::decode_snapshot(&snapshot).expect("snapshot decodes");
    for firing in &report.trace.firings {
        let changes = shipper.apply(&firing.delta).expect("trace replays");
        log.append(&changes).expect("batch encodes");
    }
    println!(
        "ran {} productions; redo log: {} batches, {} bytes",
        report.commits,
        log.batches(),
        log.as_bytes().len()
    );

    // --- "crash" and recover: snapshot + redo log ---
    let mut recovered = WorkingMemory::decode_snapshot(&snapshot).expect("snapshot decodes");
    let parsed = RedoLog::from_bytes(log.as_bytes()).expect("log frames validate");
    let applied = parsed.replay(&mut recovered).expect("replay succeeds");
    println!("recovered by replaying {applied} batches");

    // --- verify bit-for-bit recovery ---
    let live: Vec<&Wme> = engine.wm().iter().collect();
    let restored: Vec<&Wme> = recovered.iter().collect();
    assert_eq!(live.len(), restored.len());
    for (a, b) in live.iter().zip(&restored) {
        assert_eq!(*a, *b, "recovered tuple differs");
    }
    assert_eq!(recovered.class_iter("shipment").count(), 3);
    println!("\nrecovered state identical to the live engine state — OK");
}
