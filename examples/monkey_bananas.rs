//! The classic OPS5 planning toy: the monkey and the bananas.
//!
//! A monkey, a ladder and hanging bananas, in different places. The rule
//! set walks the monkey to the ladder, pushes the ladder under the
//! bananas, climbs, and grabs — then `halt`s.
//!
//! ```text
//! cargo run --example monkey_bananas
//! ```

use dbps::engine::{EngineConfig, SingleThreadEngine, StepOutcome};
use dbps::rete::Strategy;
use dbps::rules::RuleSet;
use dbps::wm::{WmeData, WorkingMemory};

const RULES: &str = r#"
; Walk to wherever the ladder stands.
(p go-to-ladder
   (monkey ^on floor ^at <m>)
   (ladder ^at { <> <m> <l> })
   -->
   (modify 1 ^at <l>))

; Push the ladder (and walk with it) under the bananas.
(p push-ladder
   (monkey ^on floor ^at <l>)
   (ladder ^at <l>)
   (bananas ^at { <> <l> <b> })
   -->
   (modify 2 ^at <b>)
   (modify 1 ^at <b>))

; Climb once everything lines up.
(p climb
   (monkey ^on floor ^holding nothing ^at <a>)
   (ladder ^at <a>)
   (bananas ^at <a>)
   -->
   (modify 1 ^on ladder))

; Grab the bananas and stop.
(p grab
   (monkey ^on ladder ^holding nothing ^at <a>)
   (bananas ^at <a>)
   -->
   (modify 1 ^holding bananas)
   (make goal ^achieved true)
   (halt))
"#;

fn main() {
    let rules = RuleSet::parse(RULES).expect("rule set parses");
    let mut wm = WorkingMemory::new();
    wm.insert(
        WmeData::new("monkey")
            .with("at", "door")
            .with("on", "floor")
            .with("holding", "nothing"),
    );
    wm.insert(WmeData::new("ladder").with("at", "window"));
    wm.insert(WmeData::new("bananas").with("at", "center"));

    let mut engine = SingleThreadEngine::new(
        &rules,
        wm,
        EngineConfig {
            strategy: Strategy::Mea,
            max_cycles: 50,
        },
    );
    let report = engine.run();

    println!("plan: {:?}", report.trace.names());
    for wme in engine.wm().iter() {
        println!("  {wme}");
    }

    assert_eq!(report.outcome, StepOutcome::Halted);
    assert_eq!(
        report.trace.names(),
        ["go-to-ladder", "push-ladder", "climb", "grab"],
        "the canonical four-step plan"
    );
    let monkey = engine
        .wm()
        .class_iter("monkey")
        .next()
        .expect("monkey exists");
    assert_eq!(
        monkey.get("holding").and_then(|v| v.as_text()),
        Some("bananas")
    );
    println!("\nthe monkey has the bananas — OK");
}
