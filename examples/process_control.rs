//! Process control — the database-production-system application the
//! paper's introduction motivates ("many new database applications,
//! e.g., manufacturing and process control, need some rule based
//! reasoning").
//!
//! A plant floor: machines report temperature samples; rules classify
//! overheating machines, shut them down, and dispatch technicians —
//! executed **in parallel** by the dynamic engine under the paper's
//! `Rc`/`Ra`/`Wa` protocol, with the commit trace checked against the
//! single-thread execution semantics (Definition 3.2).
//!
//! ```text
//! cargo run --example process_control
//! ```

use dbps::engine::semantics::validate_trace;
use dbps::engine::{ParallelConfig, ParallelEngine, WorkModel};
use dbps::lock::{ConflictPolicy, Protocol};
use dbps::rules::RuleSet;
use dbps::wm::{WmeData, WorkingMemory};

const RULES: &str = r#"
; A sample above the threshold marks its machine overheated.
(p flag-overheat
   (sample ^machine <m> ^temp { > 90 <t> })
   (machine ^id <m> ^state running)
   -->
   (remove 1)
   (modify 2 ^state overheated ^last-temp <t>))

; Cool samples are simply consumed.
(p consume-normal
   (sample ^machine <m> ^temp <= 90)
   -->
   (remove 1))

; Hot samples for machines no longer running are stale: consume them.
(p consume-stale
   (sample ^machine <m> ^temp > 90)
   -(machine ^id <m> ^state running)
   -->
   (remove 1))

; An overheated machine is shut down and a technician dispatched,
; unless one is already on the way.
(p shutdown
   (machine ^id <m> ^state overheated)
   -(dispatch ^machine <m>)
   -->
   (modify 1 ^state shutdown)
   (make dispatch ^machine <m>))
"#;

fn main() {
    let rules = RuleSet::parse(RULES).expect("rule set parses");
    let mut wm = WorkingMemory::new();
    for m in 0..6i64 {
        wm.insert(
            WmeData::new("machine")
                .with("id", m)
                .with("state", "running"),
        );
    }
    // Samples: machines 1 and 4 run hot.
    for (m, t) in [
        (0i64, 70i64),
        (1, 95),
        (2, 80),
        (3, 65),
        (4, 102),
        (5, 88),
        (1, 97),
    ] {
        wm.insert(WmeData::new("sample").with("machine", m).with("temp", t));
    }
    let initial = wm.clone();

    let mut engine = ParallelEngine::new(
        &rules,
        wm,
        ParallelConfig {
            protocol: Protocol::RcRaWa,
            policy: ConflictPolicy::Revalidate,
            workers: 4,
            work: WorkModel::FixedMicros(200), // each rule is a small "query"
            max_commits: 1_000,
            rc_escalation: None,
            lock_shards: dbps::lock::DEFAULT_SHARDS,
            ..Default::default()
        },
    );
    let report = engine.run();
    validate_trace(&rules, &initial, &report.trace)
        .expect("parallel run is semantically consistent");

    println!(
        "committed {} productions on 4 workers in {:.2} ms ({} aborts, trace valid)",
        report.commits,
        report.wall.as_secs_f64() * 1e3,
        report.aborts.total(),
    );
    let final_wm = engine.final_wm();
    for machine in final_wm.class_iter("machine") {
        println!("  {machine}");
    }

    let shutdown = final_wm
        .class_iter("machine")
        .filter(|w| w.get("state").and_then(|v| v.as_text()) == Some("shutdown"))
        .count();
    assert_eq!(shutdown, 2, "machines 1 and 4 shut down");
    assert_eq!(
        final_wm.class_iter("dispatch").count(),
        2,
        "one technician each"
    );
    assert_eq!(
        final_wm.class_iter("sample").count(),
        0,
        "all samples consumed"
    );
    println!("\nprocess control OK");
}
