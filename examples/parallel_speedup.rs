//! Measures the §5 speed-up factors on real threads: worker count,
//! degree of conflict, and lock protocol — the wall-clock companion to
//! the discrete-event reproduction of Figures 5.1–5.4 (run
//! `cargo run -p dps-bench --bin repro --release` for those).
//!
//! ```text
//! cargo run --release --example parallel_speedup
//! ```

use std::time::Duration;

use dbps::engine::semantics::validate_trace;
use dbps::engine::{ParallelConfig, ParallelEngine, WorkModel};
use dbps::lock::{ConflictPolicy, Protocol};
use dbps::rules::RuleSet;
use dbps::wm::{WmeData, WorkingMemory};

/// `tasks` tasks, each charging one of `tallies` shared counters.
fn workload(tasks: usize, tallies: usize) -> (RuleSet, WorkingMemory) {
    let rules = RuleSet::parse(
        "(p charge (task ^res <r> ^state todo) (tally ^id <r> ^count <c>)
           --> (modify 1 ^state done) (modify 2 ^count (+ <c> 1)))",
    )
    .expect("parses");
    let mut wm = WorkingMemory::new();
    for r in 0..tallies {
        wm.insert(
            WmeData::new("tally")
                .with("id", r as i64)
                .with("count", 0i64),
        );
    }
    for t in 0..tasks {
        wm.insert(
            WmeData::new("task")
                .with("res", (t % tallies) as i64)
                .with("state", "todo"),
        );
    }
    (rules, wm)
}

fn run(tasks: usize, tallies: usize, workers: usize, protocol: Protocol) -> (Duration, u64) {
    let (rules, wm) = workload(tasks, tallies);
    let initial = wm.clone();
    let mut engine = ParallelEngine::new(
        &rules,
        wm,
        ParallelConfig {
            protocol,
            policy: ConflictPolicy::AbortReaders,
            workers,
            work: WorkModel::FixedMicros(1_000), // 1 ms "database query" per RHS
            max_commits: 10_000,
            rc_escalation: None,
            lock_shards: dbps::lock::DEFAULT_SHARDS,
            ..Default::default()
        },
    );
    let report = engine.run();
    assert_eq!(report.commits, tasks);
    validate_trace(&rules, &initial, &report.trace).expect("semantically consistent");
    (report.wall, report.aborts.total())
}

fn main() {
    const TASKS: usize = 24;

    println!("-- speed-up vs number of processors (no conflict: {TASKS} disjoint tallies) --");
    let (base, _) = run(TASKS, TASKS, 1, Protocol::RcRaWa);
    println!(
        "  workers  1: {:>7.1} ms  (speedup 1.00)",
        base.as_secs_f64() * 1e3
    );
    for workers in [2usize, 4, 8] {
        let (t, _) = run(TASKS, TASKS, workers, Protocol::RcRaWa);
        println!(
            "  workers {workers:>2}: {:>7.1} ms  (speedup {:.2})",
            t.as_secs_f64() * 1e3,
            base.as_secs_f64() / t.as_secs_f64()
        );
    }

    println!("\n-- speed-up vs degree of conflict (8 workers; fewer tallies = more conflict) --");
    for tallies in [24usize, 8, 2, 1] {
        let (t, aborts) = run(TASKS, tallies, 8, Protocol::RcRaWa);
        println!(
            "  {tallies:>2} tallies: {:>7.1} ms  (speedup {:.2}, {aborts} aborts)",
            t.as_secs_f64() * 1e3,
            base.as_secs_f64() / t.as_secs_f64()
        );
    }

    println!("\n-- lock protocol at moderate conflict (8 workers, 4 tallies) --");
    for (name, protocol) in [("2PL   ", Protocol::TwoPhase), ("RcRaWa", Protocol::RcRaWa)] {
        let (t, aborts) = run(TASKS, 4, 8, protocol);
        println!(
            "  {name}: {:>7.1} ms  ({aborts} aborts)",
            t.as_secs_f64() * 1e3
        );
    }

    println!("\nall traces validated against the single-thread execution semantics — OK");
}
