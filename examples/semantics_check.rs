//! Executable tour of §3: builds the execution graph of the paper's
//! §3.3 example, enumerates `ES_single`, and demonstrates the
//! semantic-consistency condition (Definition 3.2) by checking both the
//! simulator's multi-thread commit sequences and a real parallel run.
//!
//! ```text
//! cargo run --example semantics_check
//! ```

use dbps::engine::abstract_model::{fmt_seq, paper33_example, paper51_base};
use dbps::engine::semantics::{validate_trace, ExecutionGraph};
use dbps::engine::{ParallelConfig, ParallelEngine};
use dbps::rules::RuleSet;
use dbps::sim::simulate_multi;
use dbps::wm::{WmeData, WorkingMemory};

fn main() {
    // --- the §3.3 example and Figure 3.2 ---
    let sys = paper33_example();
    let graph = ExecutionGraph::build(&sys, 10_000);
    println!("§3.3 execution graph: {} states", graph.state_count());
    let seqs = graph.maximal_sequences(100, 100);
    println!("ES_single has {} maximal sequences:", seqs.len());
    for s in &seqs {
        println!("  {}", fmt_seq(s));
    }
    assert_eq!(seqs.len(), 9, "the paper's example lists nine");

    // --- Definition 3.2 on the simulator's multi-thread schedules ---
    let base = paper51_base();
    let base_graph = ExecutionGraph::build(&base, 10_000);
    for np in 1..=4 {
        let m = simulate_multi(&base, np);
        assert!(
            base_graph.admits(&m.commit_seq),
            "multi-thread commit sequence must lie in ES_single"
        );
        println!(
            "Np={np}: commit sequence '{}' admitted by the execution graph",
            fmt_seq(&m.commit_seq)
        );
    }

    // --- Definition 3.2 on a real threaded run over concrete rules ---
    let rules = RuleSet::parse("(p bump (cell ^n { > 0 <n> }) --> (modify 1 ^n (- <n> 1)))")
        .expect("parses");
    let mut wm = WorkingMemory::new();
    for _ in 0..8 {
        wm.insert(WmeData::new("cell").with("n", 3i64));
    }
    let initial = wm.clone();
    let mut engine = ParallelEngine::new(&rules, wm, ParallelConfig::default());
    let report = engine.run();
    validate_trace(&rules, &initial, &report.trace)
        .expect("every parallel commit sequence replays single-threadedly");
    println!(
        "\nparallel engine: {} commits validated against ES_single — Theorem 2 observed",
        report.commits
    );
}
